// Three-way engine crossover (ISSUE 7 tentpole deliverable): the Fig-8
// comparison re-run with the SPIN-style in-memory engine as a third column.
//
//   crossover — for each paper matrix, the same inversion on (a) the
//               Hadoop-style disk-tier pipeline, (b) the SPIN-style engine
//               (block cache + pipeline fusion), (c) the ScaLAPACK
//               baseline. Asserts the in-memory engine beats replicated
//               disk (speedup > 1) and that cache hits were actually taken
//               (fusion happened, not just a tier rename).
//   chaos     — one node killed mid-run, Hadoop-style vs SPIN-style. The
//               Hadoop path recovers by task re-execution + DFS
//               re-replication; the SPIN path must recover its memory-tier
//               partitions by lineage recomputation waves with NO
//               UnrecoverableBlock, and still meet the residual bound.
//   spill     — SPIN run with a deliberately tiny per-node cache: LRU
//               eviction must spill to disk (bytes_spilled > 0) and the
//               answer must stay correct.
//   deterministic — two same-seed SPIN chaos runs must produce
//               bit-identical run reports (cache epochs and eviction order
//               are functions of the job sequence, not thread timing).
//
// Emits BENCH_pr7.json (--out PATH). --probe shrinks the sweep for CI.
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness.hpp"
#include "sim/chaos.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct EngineRun {
  bool completed = false;
  std::string error;  // empty when completed
  double sim_seconds = 0.0;
  double paper_hours = 0.0;
  double residual = 0.0;
  int tasks_recomputed = 0;
  engine::EngineStats engine_stats;  // zero for disk-tier runs
  bool engine_active = false;
  RecoveryStats chaos_stats;
  std::vector<mr::JobResult> jobs;
  std::string report_json;  // run-report JSON (determinism check)
};

/// One inversion on a fresh cluster/DFS (and chaos engine when events or a
/// sampling config are given). `spin` selects the in-memory engine.
EngineRun run_engine(const ScaledSetup& s, int nodes,
                     std::uint64_t matrix_seed, bool spin,
                     std::uint64_t cache_capacity_bytes,
                     const std::vector<ChaosEvent>& events, bool verify) {
  MetricsRegistry metrics;
  Cluster cluster(nodes, s.model);
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);

  ChaosOptions chaos_options;
  chaos_options.seed = matrix_seed;
  ChaosEngine chaos(chaos_options);
  const bool with_chaos = !events.empty();
  for (const ChaosEvent& event : events) chaos.add_event(event);
  if (with_chaos) fs.bind_chaos(&chaos, s.model.network_bandwidth);

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics,
                                   with_chaos ? &chaos : nullptr);
  core::InversionOptions opts;
  opts.nb = s.nb;
  opts.engine = spin ? core::EngineKind::kSpin : core::EngineKind::kHadoop;
  opts.cache_capacity_bytes = cache_capacity_bytes;
  const Matrix a = random_matrix(s.n, matrix_seed);

  EngineRun run;
  try {
    core::MapReduceInverter::Result result = inverter.invert(a, opts);
    run.completed = true;
    run.sim_seconds = result.report.sim_seconds;
    run.paper_hours = to_paper_seconds(run.sim_seconds, s.scale) / 3600.0;
    run.residual = verify ? inversion_residual(a, result.inverse) : 0.0;
    run.jobs = result.jobs;
    run.engine_active = result.engine_active;
    run.engine_stats = result.engine_stats;
    for (const mr::JobResult& job : run.jobs) {
      run.tasks_recomputed += job.tasks_recomputed;
    }
    run.report_json = run_report_json(mr::build_run_report(
        result.jobs, cluster, &metrics, result.master_spans,
        with_chaos ? &chaos : nullptr,
        result.engine_active ? &result.engine_stats : nullptr));
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  run.chaos_stats = chaos.stats();
  return run;
}

/// Kill time inside a reduce window ~`fraction` through the clean run, so
/// the dead node holds completed intermediates of earlier jobs.
double pick_kill_time(const EngineRun& clean, double fraction) {
  const double target = fraction * clean.sim_seconds;
  double best = -1.0;
  double best_distance = 0.0;
  for (const mr::JobResult& job : clean.jobs) {
    if (job.reduce_phase_seconds <= 0.0) continue;
    const double launch = job.sim_seconds - job.map_phase_seconds -
                          job.reduce_phase_seconds - job.recovery_seconds -
                          job.lineage_stall_seconds;
    const double reduce_start =
        job.start_seconds + launch + job.map_phase_seconds;
    const double at = reduce_start + 0.25 * job.reduce_phase_seconds;
    const double distance = std::abs(at - target);
    if (best < 0.0 || distance < best_distance) {
      best = at;
      best_distance = distance;
    }
  }
  MRI_REQUIRE(best >= 0.0, "clean run has no job with a reduce phase");
  return best;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const bool probe = cli.get_bool("probe", false);
  const int nodes = cli.get_int("nodes", 4);
  const double scale = cli.get_double("scale", 64.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string out = cli.get_string("out", "BENCH_pr7.json");
  const double residual_bound = 1e-8;  // §7.2: double precision stays ~1e-12
  const std::uint64_t cache_default = 256ull << 20;

  print_header("engine crossover: Hadoop-style vs SPIN-style vs ScaLAPACK",
               "Fig. 8 + §8 'implement on Spark'");

  // ---- 1. clean three-way crossover ---------------------------------------
  const std::vector<PaperMatrix> matrices =
      probe ? std::vector<PaperMatrix>{kM5}
            : std::vector<PaperMatrix>{kM5, kM1, kM2};
  struct Point {
    PaperMatrix m;
    ScaledSetup setup;
    EngineRun hadoop;
    EngineRun spin;
    ScalRun scalapack;
  };
  std::vector<Point> points;
  bool crossover_ok = true;
  bool fusion_ok = true;
  std::printf("clean runs at 1/%.0f scale on %d nodes "
              "(paper-hours = sim x S^3):\n", scale, nodes);
  for (const PaperMatrix& m : matrices) {
    Point p;
    p.m = m;
    p.setup = scaled_setup(m, scale);
    p.hadoop = run_engine(p.setup, nodes, seed, /*spin=*/false, cache_default,
                          {}, true);
    p.spin = run_engine(p.setup, nodes, seed, /*spin=*/true, cache_default,
                        {}, true);
    p.scalapack = run_scalapack(p.setup, nodes, seed);
    MRI_REQUIRE(p.hadoop.completed && p.spin.completed,
                m.name << " clean run failed: hadoop '" << p.hadoop.error
                       << "', spin '" << p.spin.error << "'");
    const double speedup = p.hadoop.paper_hours / p.spin.paper_hours;
    std::printf("  %-3s (order %5lld): hadoop %7.2f h | spin %7.2f h "
                "(%.2fx, %llu cache hits) | scalapack %7.2f h\n",
                m.name, static_cast<long long>(p.setup.n),
                p.hadoop.paper_hours, p.spin.paper_hours, speedup,
                static_cast<unsigned long long>(p.spin.engine_stats.cache.hits),
                p.scalapack.paper_seconds / 3600.0);
    if (speedup <= 1.0) crossover_ok = false;
    if (!p.spin.engine_active || p.spin.engine_stats.cache.hits == 0) {
      fusion_ok = false;
    }
    if (p.hadoop.residual >= residual_bound ||
        p.spin.residual >= residual_bound) {
      crossover_ok = false;
    }
    points.push_back(std::move(p));
  }

  // ---- 2. chaos: one node kill, Hadoop recovery vs lineage recovery -------
  const Point& base = points.front();
  const int kill_node = nodes - 1;
  const double kill_at_hadoop = pick_kill_time(base.hadoop, 0.4);
  const double kill_at_spin = pick_kill_time(base.spin, 0.4);
  const std::vector<ChaosEvent> hadoop_events = {
      {ChaosEventKind::kKillNode, kill_at_hadoop, kill_node, 1.0}};
  const std::vector<ChaosEvent> spin_events = {
      {ChaosEventKind::kKillNode, kill_at_spin, kill_node, 1.0}};

  const EngineRun hadoop_kill = run_engine(base.setup, nodes, seed, false,
                                           cache_default, hadoop_events, true);
  const EngineRun spin_kill = run_engine(base.setup, nodes, seed, true,
                                         cache_default, spin_events, true);
  MRI_REQUIRE(hadoop_kill.completed,
              "hadoop kill run did not recover: " << hadoop_kill.error);

  const bool lineage_ok =
      spin_kill.completed && spin_kill.residual < residual_bound &&
      spin_kill.chaos_stats.partitions_recomputed >= 1 &&
      spin_kill.chaos_stats.lineage_waves >= 1 &&
      spin_kill.error.find("nrecoverable") == std::string::npos;
  std::printf("\nnode %d killed mid-run (%s):\n", kill_node, base.m.name);
  std::printf("  hadoop: %.2f h (%.2fx clean), %d task(s) re-executed, "
              "%llu bytes re-replicated\n",
              hadoop_kill.paper_hours,
              hadoop_kill.paper_hours / base.hadoop.paper_hours,
              hadoop_kill.tasks_recomputed,
              static_cast<unsigned long long>(
                  hadoop_kill.chaos_stats.re_replicated_bytes));
  if (spin_kill.completed) {
    std::printf("  spin  : %.2f h (%.2fx clean), %d partition(s) rebuilt in "
                "%d lineage wave(s), residual %.2e\n",
                spin_kill.paper_hours,
                spin_kill.paper_hours / base.spin.paper_hours,
                spin_kill.chaos_stats.partitions_recomputed,
                spin_kill.chaos_stats.lineage_waves, spin_kill.residual);
  } else {
    std::printf("  spin  : DID NOT RECOVER (%s)\n",
                spin_kill.error.substr(0, 100).c_str());
  }

  // ---- 3. spill: tiny cache forces LRU eviction to disk -------------------
  const EngineRun spill_run = run_engine(base.setup, nodes, seed, true,
                                         /*cache=*/16ull << 10, {}, true);
  const bool spill_ok = spill_run.completed &&
                        spill_run.residual < residual_bound &&
                        spill_run.engine_stats.cache.evictions > 0 &&
                        spill_run.engine_stats.cache.spilled_bytes > 0;
  std::printf("\n16 KB/node cache: %llu eviction(s), %llu bytes spilled, "
              "residual %.2e -> %s\n",
              static_cast<unsigned long long>(
                  spill_run.engine_stats.cache.evictions),
              static_cast<unsigned long long>(
                  spill_run.engine_stats.cache.spilled_bytes),
              spill_run.residual, spill_ok ? "ok" : "FAILED");

  // ---- 4. determinism: same-seed spin chaos reports bit-identical ---------
  const EngineRun spin_kill2 = run_engine(base.setup, nodes, seed, true,
                                          cache_default, spin_events, true);
  const bool deterministic = spin_kill2.completed && spin_kill.completed &&
                             spin_kill2.report_json == spin_kill.report_json;
  std::printf("deterministic: %s (same-seed spin chaos reports %s)\n",
              deterministic ? "yes" : "NO",
              deterministic ? "bit-identical" : "DIFFER");

  std::printf("\nspin beats hadoop clean : %s\n", crossover_ok ? "yes" : "NO");
  std::printf("pipeline fusion active  : %s\n", fusion_ok ? "yes" : "NO");
  std::printf("lineage recovery        : %s\n", lineage_ok ? "yes" : "NO");

  std::ostringstream json;
  json.precision(17);
  json << "{\"config\":{\"nodes\":" << nodes << ",\"scale\":" << scale
       << ",\"seed\":" << seed << ",\"probe\":" << (probe ? "true" : "false")
       << ",\"residual_bound\":" << residual_bound << "},\"crossover\":[";
  bool first = true;
  for (const Point& p : points) {
    if (!first) json << ',';
    first = false;
    json << "{\"matrix\":\"" << p.m.name << "\",\"order\":" << p.setup.n
         << ",\"hadoop_hours\":" << p.hadoop.paper_hours
         << ",\"spin_hours\":" << p.spin.paper_hours
         << ",\"scalapack_hours\":" << p.scalapack.paper_seconds / 3600.0
         << ",\"speedup_spin_vs_hadoop\":"
         << p.hadoop.paper_hours / p.spin.paper_hours
         << ",\"cache_hits\":" << p.spin.engine_stats.cache.hits
         << ",\"cache_insertions\":" << p.spin.engine_stats.cache.insertions
         << ",\"bytes_spilled\":" << p.spin.engine_stats.cache.spilled_bytes
         << ",\"residual_hadoop\":" << p.hadoop.residual
         << ",\"residual_spin\":" << p.spin.residual
         << ",\"residual_scalapack\":" << p.scalapack.residual << '}';
  }
  json << "],\"chaos\":{\"kill_node\":" << kill_node
       << ",\"hadoop\":{\"kill_at\":" << kill_at_hadoop
       << ",\"hours\":" << hadoop_kill.paper_hours
       << ",\"stretch\":" << hadoop_kill.paper_hours / base.hadoop.paper_hours
       << ",\"tasks_recomputed\":" << hadoop_kill.tasks_recomputed
       << ",\"re_replicated_bytes\":"
       << hadoop_kill.chaos_stats.re_replicated_bytes
       << ",\"residual\":" << hadoop_kill.residual
       << "},\"spin\":{\"kill_at\":" << kill_at_spin
       << ",\"completed\":" << (spin_kill.completed ? "true" : "false")
       << ",\"hours\":" << spin_kill.paper_hours
       << ",\"stretch\":" << spin_kill.paper_hours / base.spin.paper_hours
       << ",\"partitions_recomputed\":"
       << spin_kill.chaos_stats.partitions_recomputed
       << ",\"lineage_waves\":" << spin_kill.chaos_stats.lineage_waves
       << ",\"lineage_recompute_seconds\":"
       << spin_kill.chaos_stats.lineage_recompute_seconds
       << ",\"lineage_recomputed_bytes\":"
       << spin_kill.chaos_stats.lineage_recomputed_bytes
       << ",\"residual\":" << spin_kill.residual
       << ",\"error\":\"" << json_escape(spin_kill.error.substr(0, 120))
       << "\"}},\"spill\":{\"cache_bytes_per_node\":" << (16ull << 10)
       << ",\"completed\":" << (spill_run.completed ? "true" : "false")
       << ",\"evictions\":" << spill_run.engine_stats.cache.evictions
       << ",\"bytes_spilled\":" << spill_run.engine_stats.cache.spilled_bytes
       << ",\"residual\":" << spill_run.residual
       << "},\"deterministic\":" << (deterministic ? "true" : "false")
       << ",\"crossover_ok\":" << (crossover_ok ? "true" : "false")
       << ",\"fusion_ok\":" << (fusion_ok ? "true" : "false")
       << ",\"lineage_ok\":" << (lineage_ok ? "true" : "false")
       << ",\"spill_ok\":" << (spill_ok ? "true" : "false") << "}";

  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("results written to %s\n", out.c_str());

  return crossover_ok && fusion_ok && lineage_ok && spill_ok && deterministic
             ? 0
             : 1;
}
