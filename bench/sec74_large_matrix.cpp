// §7.4: scaling to the very large matrix M4 (order 102400).
//
// Paper's numbers to reproduce (shape, not absolutes):
//  * 128 large instances, no failure:   ~5 h;
//  * 128 large instances, one mapper inverting a triangular matrix failed
//    and only restarted when another mapper finished: ~8 h (~1.6x);
//  * 64 medium instances:               ~15 h (~3x the large-instance run);
//  * >500 GB written, >20 TB read across the 33-job pipeline.
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct Run {
  const char* label;
  double paper_hours;
  int jobs;
  int failures;
  IoStats io;  // scaled io; multiply bytes by S² for paper scale
};

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 64.0);
  print_header("§7.4 scaling to the very large matrix M4", "§7.4");

  const double s2 = scale * scale;
  std::vector<Run> runs;

  // 128 large instances = 256 medium-grade cores; the paper schedules one
  // worker per core, so every map slot is busy and a failed mapper's
  // re-execution must wait for another mapper to finish (§7.4). Model the
  // cores as 256 single-slot workers with large-instance disk/network and
  // variance.
  CostModel large_cores = CostModel::ec2_large();
  large_cores.flops_per_second /= 2.0;  // per core, not per instance
  large_cores.slots_per_node = 1;
  const int large_workers = 256;

  // --- 128 large instances, clean run --------------------------------------
  {
    const ScaledSetup setup = scaled_setup(kM4, scale, large_cores);
    const MrRun r = run_mapreduce(setup, large_workers, {}, 1, nullptr, false);
    runs.push_back(Run{"128 large, no failure", r.paper_seconds / 3600.0,
                       r.result.report.jobs,
                       r.result.report.failures_recovered,
                       r.result.report.io});
  }

  // --- 128 large instances, one failed mapper in the final job -------------
  {
    const ScaledSetup setup = scaled_setup(kM4, scale, large_cores);
    FailureInjector failures;
    // "one mapper computing the inverse of a triangular matrix failed".
    failures.add_rule(FailureRule{"invert", /*task=*/5, /*attempt=*/0, true});
    const MrRun r =
        run_mapreduce(setup, large_workers, {}, 1, &failures, false);
    runs.push_back(Run{"128 large, one mapper fails",
                       r.paper_seconds / 3600.0, r.result.report.jobs,
                       r.result.report.failures_recovered,
                       r.result.report.io});
  }

  // --- 64 medium instances ---------------------------------------------------
  {
    const ScaledSetup setup = scaled_setup(kM4, scale, CostModel::ec2_medium());
    const MrRun r = run_mapreduce(setup, 64, {}, 1, nullptr, false);
    runs.push_back(Run{"64 medium, no failure", r.paper_seconds / 3600.0,
                       r.result.report.jobs,
                       r.result.report.failures_recovered,
                       r.result.report.io});
  }

  TextTable table({"Configuration", "Paper (h)", "Measured (h)", "Jobs",
                   "Failures recovered"});
  const double paper_hours[] = {5.0, 8.0, 15.0};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    table.add_row({runs[i].label, cell(paper_hours[i], 0),
                   cell(runs[i].paper_hours, 1), cell_int(runs[i].jobs),
                   cell_int(runs[i].failures)});
  }
  table.print();

  const double failure_stretch = runs[1].paper_hours / runs[0].paper_hours;
  const double medium_stretch = runs[2].paper_hours / runs[0].paper_hours;
  std::printf("\nfailure run / clean run : %.2fx (paper: 8/5 = 1.6x)\n",
              failure_stretch);
  std::printf("64 medium / 128 large   : %.2fx (paper: 15/5 = 3.0x)\n",
              medium_stretch);

  // I/O volumes at paper scale (bytes shrink by S² under uniform scaling).
  const auto written = static_cast<std::uint64_t>(
      static_cast<double>(runs[0].io.bytes_written +
                          runs[0].io.bytes_replicated) *
      s2);
  const auto read =
      static_cast<std::uint64_t>(static_cast<double>(runs[0].io.bytes_read) * s2);
  std::printf("data written (incl. replication): %s (paper: >500 GB)\n",
              format_bytes(written).c_str());
  std::printf("data read                       : %s (paper: >20 TB)\n",
              format_bytes(read).c_str());
  std::printf("33-job pipeline                 : %s\n",
              runs[0].jobs == 33 ? "yes (matches Table 3)" : "NO");
  return 0;
}
