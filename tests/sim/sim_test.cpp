#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/cluster.hpp"
#include "sim/cost_model.hpp"
#include "sim/failure.hpp"
#include "sim/metrics.hpp"

namespace mri {
namespace {

// ---- IoStats ----------------------------------------------------------------

TEST(IoStats, Accumulates) {
  IoStats a{.bytes_written = 10,
            .bytes_read = 20,
            .bytes_transferred = 30,
            .bytes_replicated = 5,
            .bytes_written_memory = 7,
            .mults = 100,
            .adds = 200};
  IoStats b{.bytes_written = 1,
            .bytes_read = 2,
            .bytes_transferred = 3,
            .bytes_replicated = 4,
            .bytes_written_memory = 5,
            .mults = 5,
            .adds = 6};
  a += b;
  EXPECT_EQ(a.bytes_written, 11u);
  EXPECT_EQ(a.bytes_read, 22u);
  EXPECT_EQ(a.bytes_transferred, 33u);
  EXPECT_EQ(a.bytes_replicated, 9u);
  EXPECT_EQ(a.bytes_written_memory, 12u);
  EXPECT_EQ(a.flops(), 311u);
}

TEST(IoStats, SubtractionUnderflowThrowsPerField) {
  // A stage split whose minuend doesn't dominate is a bug; it must throw
  // loudly instead of wrapping to ~2^64. Every field is checked.
  const IoStats big{.bytes_written = 10,
                    .bytes_read = 10,
                    .bytes_transferred = 10,
                    .bytes_replicated = 10,
                    .bytes_written_memory = 10,
                    .mults = 10,
                    .adds = 10};
  {
    IoStats a = big;
    IoStats b;
    b.bytes_written = 11;
    EXPECT_THROW(a -= b, InvalidArgument);
  }
  {
    IoStats a = big;
    IoStats b;
    b.bytes_read = 11;
    EXPECT_THROW(a -= b, InvalidArgument);
  }
  {
    IoStats a = big;
    IoStats b;
    b.bytes_transferred = 11;
    EXPECT_THROW(a -= b, InvalidArgument);
  }
  {
    IoStats a = big;
    IoStats b;
    b.bytes_replicated = 11;
    EXPECT_THROW(a -= b, InvalidArgument);
  }
  {
    IoStats a = big;
    IoStats b;
    b.bytes_written_memory = 11;
    EXPECT_THROW(a -= b, InvalidArgument);
  }
  {
    IoStats a = big;
    IoStats b;
    b.mults = 11;
    EXPECT_THROW(a -= b, InvalidArgument);
  }
  {
    IoStats a = big;
    IoStats b;
    b.adds = 11;
    EXPECT_THROW(a -= b, InvalidArgument);
  }
  // A failed subtraction must leave the minuend untouched.
  IoStats a = big;
  IoStats b;
  b.adds = 11;
  EXPECT_THROW(a -= b, InvalidArgument);
  EXPECT_EQ(a, big);
  // Exact equality subtracts to all-zero without throwing.
  IoStats c = big;
  c -= big;
  EXPECT_EQ(c, IoStats{});
}

// ---- cost model ----------------------------------------------------------------

TEST(CostModel, TaskSecondsComposition) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.disk_bandwidth = 100e6;
  m.network_bandwidth = 50e6;
  m.task_overhead_seconds = 1.0;
  IoStats io;
  io.mults = 500'000'000;  // 0.5 s
  io.adds = 500'000'000;   // 0.5 s
  io.bytes_read = 50'000'000;       // no transfers -> local, 0.5 s at disk bw
  io.bytes_written = 100'000'000;   // 1 s at disk bw
  io.bytes_replicated = 50'000'000; // 1 s at net bw
  EXPECT_NEAR(m.task_seconds(io), 1.0 + 1.0 + 0.5 + 1.0 + 1.0, 1e-9);
  EXPECT_NEAR(m.compute_seconds(io), 3.5, 1e-9);
}

TEST(CostModel, LocalReadsChargeDiskNotNetwork) {
  // Regression: only the network-crossing part of bytes_read pays the
  // network path. bytes_transferred counts remote reads + the replication
  // pipeline, so remote reads are transferred - replicated, clamped into
  // [0, bytes_read]; the rest of the reads stream at disk bandwidth.
  CostModel m;
  m.flops_per_second = 1e9;
  m.disk_bandwidth = 100e6;
  m.network_bandwidth = 25e6;
  m.task_overhead_seconds = 0.0;

  IoStats io;
  io.bytes_read = 100'000'000;
  io.bytes_transferred = 75'000'000;
  io.bytes_replicated = 50'000'000;
  // remote = 75 - 50 = 25 MB at net bw (1 s); local = 75 MB at disk bw
  // (0.75 s); replication = 50 MB at net bw (2 s).
  EXPECT_NEAR(m.compute_seconds(io), 1.0 + 0.75 + 2.0, 1e-9);

  // Fully local read: everything at disk bandwidth.
  IoStats local;
  local.bytes_read = 100'000'000;
  EXPECT_NEAR(m.compute_seconds(local), 1.0, 1e-9);

  // Fully remote read: everything at network bandwidth.
  IoStats remote;
  remote.bytes_read = 100'000'000;
  remote.bytes_transferred = 100'000'000;
  EXPECT_NEAR(m.compute_seconds(remote), 4.0, 1e-9);

  // Transfers beyond bytes_read (e.g. shuffle) never push the read charge
  // past the bytes actually read.
  IoStats over;
  over.bytes_read = 50'000'000;
  over.bytes_transferred = 200'000'000;
  EXPECT_NEAR(m.compute_seconds(over), 2.0, 1e-9);
}

TEST(CostModel, SpeedFactorScalesCompute) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  IoStats io;
  io.mults = 1'000'000'000;
  EXPECT_NEAR(m.task_seconds(io, 2.0), 0.5, 1e-9);
}

TEST(CostModel, ScaledDownPreservesShape) {
  // A task at scale S and its full-size counterpart must satisfy
  // t_small = t_full / S^3 exactly.
  const CostModel full = CostModel::ec2_medium();
  const double s = 4.0;
  const CostModel small = full.scaled_down(s);

  IoStats io_full;
  io_full.mults = 1'000'000'000'000ull;
  io_full.adds = 1'000'000'000'000ull;
  io_full.bytes_read = 8'000'000'000ull;
  io_full.bytes_written = 2'000'000'000ull;
  io_full.bytes_replicated = 4'000'000'000ull;

  IoStats io_small;
  io_small.mults = io_full.mults / 64;  // S^3
  io_small.adds = io_full.adds / 64;
  io_small.bytes_read = io_full.bytes_read / 16;  // S^2
  io_small.bytes_written = io_full.bytes_written / 16;
  io_small.bytes_replicated = io_full.bytes_replicated / 16;

  EXPECT_NEAR(small.task_seconds(io_small) * 64.0, full.task_seconds(io_full),
              1e-6 * full.task_seconds(io_full));
}

TEST(CostModel, ScaledDownIsExactOneOverSCubed) {
  // For S = 4 every model parameter scales by an exact power of two, and
  // the workload fields divide without remainder, so t_small == t_full/S^3
  // holds to the last bit — not just to a tolerance.
  const CostModel full = CostModel::ec2_medium();
  const double s = 4.0;
  const CostModel small = full.scaled_down(s);

  EXPECT_EQ(small.disk_bandwidth, full.disk_bandwidth * 4.0);
  EXPECT_EQ(small.network_bandwidth, full.network_bandwidth * 4.0);
  EXPECT_EQ(small.job_launch_seconds, full.job_launch_seconds / 64.0);
  EXPECT_EQ(small.task_overhead_seconds, full.task_overhead_seconds / 64.0);

  IoStats io_full;
  io_full.mults = 1ull << 40;
  io_full.adds = 1ull << 40;
  io_full.bytes_read = 1ull << 33;
  io_full.bytes_written = 1ull << 31;
  io_full.bytes_replicated = 1ull << 32;

  IoStats io_small;
  io_small.mults = io_full.mults / 64;
  io_small.adds = io_full.adds / 64;
  io_small.bytes_read = io_full.bytes_read / 16;
  io_small.bytes_written = io_full.bytes_written / 16;
  io_small.bytes_replicated = io_full.bytes_replicated / 16;

  EXPECT_EQ(small.task_seconds(io_small) * 64.0, full.task_seconds(io_full));
  EXPECT_EQ(small.compute_seconds(io_small) * 64.0,
            full.compute_seconds(io_full));
}

TEST(CostModel, Presets) {
  const CostModel medium = CostModel::ec2_medium();
  const CostModel large = CostModel::ec2_large();
  EXPECT_GT(large.flops_per_second, medium.flops_per_second);
  EXPECT_LT(large.disk_bandwidth, medium.disk_bandwidth);  // paper §7.4
  EXPECT_GT(large.node_speed_variance, medium.node_speed_variance);
  EXPECT_EQ(large.slots_per_node, 2);
}

// ---- cluster ------------------------------------------------------------------

TEST(Cluster, SpeedFactorsDeterministic) {
  Cluster a(8, CostModel::ec2_large(), /*seed=*/7);
  Cluster b(8, CostModel::ec2_large(), /*seed=*/7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.speed_factor(i), b.speed_factor(i));
}

TEST(Cluster, VarianceBounds) {
  CostModel m = CostModel::ec2_large();
  Cluster c(64, m);
  EXPECT_EQ(c.speed_factor(0), 1.0);  // master pinned
  for (int i = 1; i < 64; ++i) {
    EXPECT_GE(c.speed_factor(i), 1.0 - m.node_speed_variance);
    EXPECT_LE(c.speed_factor(i), 1.0 + m.node_speed_variance);
  }
}

TEST(Cluster, HomogeneousWhenVarianceZero) {
  CostModel m;
  m.node_speed_variance = 0.0;
  Cluster c(4, m);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c.speed_factor(i), 1.0);
}

TEST(Cluster, TotalSlots) {
  CostModel m = CostModel::ec2_large();  // 2 slots per node
  EXPECT_EQ(Cluster(16, m).total_slots(), 32);
}

TEST(Cluster, RejectsBadArguments) {
  const CostModel m;
  EXPECT_THROW(Cluster(0, m), InvalidArgument);
  EXPECT_THROW(Cluster(2, m).speed_factor(5), InvalidArgument);
}

// ---- metrics ------------------------------------------------------------------

TEST(Metrics, AggregatesIoAndCounters) {
  MetricsRegistry m;
  m.add_io(IoStats{1, 2, 3, 0, 0, 0});
  m.add_io(IoStats{10, 20, 30, 0, 0, 0});
  EXPECT_EQ(m.io_totals().bytes_written, 11u);
  m.increment("jobs");
  m.increment("jobs", 2);
  EXPECT_EQ(m.value("jobs"), 3u);
  EXPECT_EQ(m.value("missing"), 0u);
  m.reset();
  EXPECT_EQ(m.io_totals().bytes_written, 0u);
  EXPECT_EQ(m.counters().size(), 0u);
}

// ---- failure injector -----------------------------------------------------------

TEST(Failure, MatchesOnceBySubstring) {
  FailureInjector fi;
  fi.add_rule(FailureRule{"lu:", 3, 0, true});
  EXPECT_FALSE(fi.should_fail("partition", 3, 0, true));
  EXPECT_FALSE(fi.should_fail("lu:/Root", 2, 0, true));
  EXPECT_FALSE(fi.should_fail("lu:/Root", 3, 0, false));  // reduce task
  EXPECT_TRUE(fi.should_fail("lu:/Root", 3, 0, true));
  // One-shot: the same attempt does not fail twice.
  EXPECT_FALSE(fi.should_fail("lu:/Root", 3, 0, true));
  EXPECT_EQ(fi.injected_count(), 1u);
}

TEST(Failure, MultipleRules) {
  FailureInjector fi;
  fi.add_rule(FailureRule{"job", 0, 0, true});
  fi.add_rule(FailureRule{"job", 0, 1, true});
  EXPECT_TRUE(fi.should_fail("job", 0, 0, true));
  EXPECT_TRUE(fi.should_fail("job", 0, 1, true));
  EXPECT_FALSE(fi.should_fail("job", 0, 2, true));
  EXPECT_EQ(fi.injected_count(), 2u);
}

TEST(Failure, ClearDropsRules) {
  FailureInjector fi;
  fi.add_rule(FailureRule{"x", 0, 0, true});
  fi.clear();
  EXPECT_FALSE(fi.should_fail("x", 0, 0, true));
}

}  // namespace
}  // namespace mri
