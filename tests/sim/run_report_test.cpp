// Run-report aggregation and JSON export over synthetic phase traces.
#include <gtest/gtest.h>

#include "sim/run_report.hpp"

namespace mri {
namespace {

TaskTraceEvent event(int task, int attempt, int node, int slot, double start,
                     double end, bool failed = false, bool backup = false) {
  TaskTraceEvent e;
  e.task = task;
  e.attempt = attempt;
  e.node = node;
  e.slot = slot;
  e.start = start;
  e.end = end;
  e.failed = failed;
  e.backup = backup;
  return e;
}

RunReport two_slot_run() {
  RunReport r;
  r.total_slots = 2;
  r.jobs = 1;
  r.sim_seconds = 17.0;
  PhaseTrace map;
  map.job = "lu-level-0";
  map.phase = "map";
  map.start = 15.0;  // after job launch
  map.duration = 2.0;
  map.events = {
      event(0, 0, 0, 0, 0.0, 1.0),
      event(1, 0, 1, 1, 0.0, 0.5, /*failed=*/true),
      event(1, 1, 0, 0, 1.0, 2.0),  // retry on the surviving node
  };
  r.phases.push_back(std::move(map));
  return r;
}

TEST(RunReport, PercentileEdgeCases) {
  // Empty input is defined as 0 (no samples, no latency).
  EXPECT_EQ(percentile({}, 0.5), 0.0);
  // q clamps to the extremes: q<=0 is the min, q>=1 the max.
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, -0.5), 1.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 1.0), 3.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 2.0), 3.0);
  // Single element: every quantile is that element.
  EXPECT_EQ(percentile({7.0}, 0.25), 7.0);
  EXPECT_EQ(percentile({7.0}, 0.75), 7.0);
  // Two elements interpolate linearly between closest ranks
  // (numpy default): p50 of {10, 20} is 15, p25 is 12.5.
  EXPECT_NEAR(percentile({20.0, 10.0}, 0.50), 15.0, 1e-12);
  EXPECT_NEAR(percentile({20.0, 10.0}, 0.25), 12.5, 1e-12);
  EXPECT_NEAR(percentile({20.0, 10.0}, 0.75), 17.5, 1e-12);
  // Input order never matters (sorted internally, by value).
  EXPECT_NEAR(percentile({1.0, 9.0, 5.0, 3.0, 7.0}, 0.5), 5.0, 1e-12);
}

TEST(RunReport, NetworkSectionAlwaysPresent) {
  // The "network" object is part of the stable schema even on flat runs
  // (enabled=false, empty links) so downstream parsers never branch.
  RunReport r = two_slot_run();
  aggregate_run_report(&r);
  const std::string json = run_report_json(r);
  EXPECT_NE(json.find("\"network\":{\"enabled\":false"), std::string::npos);
  EXPECT_NE(json.find("\"topology\":\"flat\""), std::string::npos);
  EXPECT_NE(json.find("\"links\":[]"), std::string::npos);

  RunReport racked = two_slot_run();
  racked.network.enabled = true;
  racked.network.topology = "racked";
  racked.network.racks = 2;
  racked.network.oversubscription = 4.0;
  racked.network.rack_aware_placement = true;
  racked.network.node_local_bytes = 5;
  racked.network.cross_rack_bytes = 9;
  LinkReport link;
  link.name = "rack0.up";
  link.bytes = 42;
  link.busy_seconds = 1.5;
  link.peak_utilization = 0.75;
  racked.network.links.push_back(link);
  aggregate_run_report(&racked);
  const std::string rj = run_report_json(racked);
  EXPECT_NE(rj.find("\"network\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(rj.find("\"topology\":\"racked\""), std::string::npos);
  EXPECT_NE(rj.find("\"oversubscription\":4"), std::string::npos);
  EXPECT_NE(rj.find("\"name\":\"rack0.up\""), std::string::npos);
  EXPECT_NE(rj.find("\"bytes\":42"), std::string::npos);
  EXPECT_NE(rj.find("\"cross_rack_bytes\":9"), std::string::npos);
}

TEST(RunReport, ChromeTraceNetworkLaneOnlyWhenLinksCarryBytes) {
  RunReport flat = two_slot_run();
  aggregate_run_report(&flat);
  EXPECT_EQ(chrome_trace_json(flat).find("\"name\":\"network\""),
            std::string::npos);

  RunReport racked = two_slot_run();
  LinkReport link;
  link.name = "host0.up";
  link.bytes = 1000;
  link.busy_seconds = 0.5;
  link.peak_utilization = 1.0;
  racked.phases[0].link_loads.push_back(link);
  aggregate_run_report(&racked);
  const std::string json = chrome_trace_json(racked);
  EXPECT_NE(json.find("\"name\":\"network\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"host0.up\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_utilization\":"), std::string::npos);
}

TEST(RunReport, AggregatesWavesUtilizationStragglers) {
  RunReport r = two_slot_run();
  aggregate_run_report(&r);
  ASSERT_EQ(r.phase_reports.size(), 1u);
  const PhaseReport& p = r.phase_reports[0];
  EXPECT_EQ(p.job, "lu-level-0");
  EXPECT_EQ(p.phase, "map");
  EXPECT_EQ(p.tasks, 2);
  EXPECT_EQ(p.attempts, 3);
  EXPECT_EQ(p.failures, 1);
  EXPECT_EQ(p.backups, 0);
  EXPECT_EQ(p.waves, 2);  // slot 0 ran two attempts
  EXPECT_NEAR(p.busy_seconds, 2.5, 1e-12);
  EXPECT_NEAR(p.slot_utilization, 2.5 / (2 * 2.0), 1e-12);
  EXPECT_NEAR(p.median_task_end, 2.0, 1e-12);
  EXPECT_NEAR(p.max_task_end, 2.0, 1e-12);
  EXPECT_NEAR(p.straggler_ratio, 1.0, 1e-12);
}

TEST(RunReport, FailureTimelineIsRunRelative) {
  RunReport r = two_slot_run();
  aggregate_run_report(&r);
  ASSERT_EQ(r.failure_timeline.size(), 1u);
  const FailureRecovery& f = r.failure_timeline[0];
  EXPECT_EQ(f.task, 1);
  EXPECT_EQ(f.attempt, 0);
  EXPECT_EQ(f.node, 1);
  EXPECT_NEAR(f.failed_at, 15.5, 1e-12);    // phase start + 0.5
  EXPECT_NEAR(f.retry_start, 16.0, 1e-12);  // phase start + 1.0
}

TEST(RunReport, AggregationIsIdempotent) {
  RunReport r = two_slot_run();
  aggregate_run_report(&r);
  aggregate_run_report(&r);
  EXPECT_EQ(r.phase_reports.size(), 1u);
  EXPECT_EQ(r.failure_timeline.size(), 1u);
}

TEST(RunReport, JsonContainsSchemaKeys) {
  RunReport r = two_slot_run();
  r.io.bytes_read = 123;
  r.counters["jobs"] = 1;
  aggregate_run_report(&r);
  const std::string json = run_report_json(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"sim_seconds\"", "\"jobs\"", "\"failures_recovered\"",
        "\"backups_run\"", "\"total_slots\"", "\"io\"", "\"shuffle\"",
        "\"dfs_io\"", "\"counters\"", "\"phases\"", "\"failure_timeline\"",
        "\"waves\"", "\"slot_utilization\"", "\"straggler_ratio\"",
        "\"bytes_read\":123"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(RunReport, IntegritySectionAlwaysPresentWithRecoveryCounter) {
  RunReport r = two_slot_run();
  aggregate_run_report(&r);
  const std::string json = run_report_json(r);
  // Always-present schema: the integrity section and the survived-read
  // counter appear (all zero) even on runs with no chaos at all.
  for (const char* key :
       {"\"integrity\"", "\"verify_checksums\":false",
        "\"cells_checksummed\":0", "\"corruptions_injected\":0",
        "\"corruptions_detected\":0", "\"cells_repaired_copy\":0",
        "\"scrub_passes\":0", "\"read_errors_survived\":0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  r.recovery.read_errors_survived = 3;
  r.integrity.verify_checksums = true;
  r.integrity.corruptions_injected = 2;
  r.integrity.corruptions_detected = 2;
  r.integrity.cells_repaired_ec = 2;
  r.integrity.repairs.push_back(
      IntegrityRepairSpan{12.5, 1, "/work/ut_0.bin", 7, 4096, "ec", true});
  r.integrity.scrub_spans.push_back(ScrubPassSpan{30.0, 0.25, 1 << 20, 16, 2});
  const std::string populated = run_report_json(r);
  for (const char* key :
       {"\"read_errors_survived\":3", "\"verify_checksums\":true",
        "\"corruptions_injected\":2", "\"cells_repaired_ec\":2",
        "\"kind\":\"ec\"", "\"by_scrubber\":true", "\"scrubs\"",
        "\"cells_verified\":16"}) {
    EXPECT_NE(populated.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(RunReport, ChromeTraceIntegrityLaneOnlyWhenActive) {
  RunReport r = two_slot_run();
  aggregate_run_report(&r);
  EXPECT_EQ(chrome_trace_json(r).find("\"name\":\"integrity\""),
            std::string::npos)
      << "no scrubs or repairs: no integrity lane";

  r.integrity.repairs.push_back(
      IntegrityRepairSpan{16.0, 1, "/work/ut_0.bin", 0, 4096, "copy", false});
  r.integrity.scrub_spans.push_back(ScrubPassSpan{15.5, 0.25, 1 << 20, 16, 1});
  const std::string trace = chrome_trace_json(r);
  EXPECT_NE(trace.find("\"name\":\"integrity\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"scrub pass\""), std::string::npos);
  EXPECT_NE(trace.find("\"repair copy /work/ut_0.bin\""), std::string::npos);
}

TEST(RunReport, ChromeTraceHasCompleteEventsAndNodeLanes) {
  RunReport r = two_slot_run();
  aggregate_run_report(&r);
  const std::string json = chrome_trace_json(r);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Metadata lanes for both nodes plus one complete event per attempt.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"failed\":true"), std::string::npos);
  // Timestamps are run-relative microseconds: map start 15 s -> 15e6 us.
  EXPECT_NE(json.find("\"ts\":15000000"), std::string::npos);
}

TEST(RunReport, JobLanesAndMasterSpansExport) {
  RunReport r = two_slot_run();
  r.job_spans = {{"lu-level-0", 15.0, 17.0}, {"invert", 17.0, 20.0}};
  MasterSpan span;
  span.start = 14.0;
  span.end = 15.0;
  span.io.mults = 42;
  r.master_spans = {span};
  aggregate_run_report(&r);
  EXPECT_NEAR(r.master_seconds, 1.0, 1e-12);
  EXPECT_NEAR(r.busy_slot_seconds, 2.5, 1e-12);
  EXPECT_NEAR(r.cluster_utilization, 2.5 / (2 * 17.0), 1e-12);

  const std::string json = run_report_json(r);
  for (const char* key :
       {"\"busy_slot_seconds\"", "\"cluster_utilization\"", "\"job_spans\"",
        "\"master\"", "\"job\":\"invert\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  const std::string trace = chrome_trace_json(r);
  // One pseudo-process lane per job plus the master lane.
  EXPECT_NE(trace.find("\"name\":\"jobs\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"master\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"master work\""), std::string::npos);
}

TEST(RunReport, EscapesJobNames) {
  RunReport r;
  r.total_slots = 1;
  PhaseTrace p;
  p.job = "weird\"name";
  p.phase = "map";
  p.duration = 1.0;
  p.events = {event(0, 0, 0, 0, 0.0, 1.0)};
  r.phases.push_back(std::move(p));
  aggregate_run_report(&r);
  EXPECT_NE(run_report_json(r).find("weird\\\"name"), std::string::npos);
  EXPECT_NE(chrome_trace_json(r).find("weird\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace mri
