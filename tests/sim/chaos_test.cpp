// ChaosEngine unit tests: schedule determinism, master sparing, kill/degrade
// queries, exactly-once event application, and the FailureInjector shim —
// including the regression for clear() forgetting the injected count.
#include "sim/chaos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "sim/failure.hpp"

namespace mri {
namespace {

TEST(ChaosEngine, EmptyScheduleIsDisabled) {
  ChaosEngine engine;
  EXPECT_FALSE(engine.enabled());
  EXPECT_TRUE(engine.events().empty());
  EXPECT_TRUE(std::isinf(engine.kill_time(0)));
  EXPECT_DOUBLE_EQ(engine.speed_factor(0, 1e9), 1.0);
}

TEST(ChaosEngine, SamplingIsDeterministicInSeed) {
  ChaosOptions options;
  options.seed = 17;
  options.mtbf_seconds = 50.0;
  options.horizon_seconds = 200.0;
  options.degrade_fraction = 0.5;
  ChaosEngine a(options), b(options);
  a.sample_faults(8);
  b.sample_faults(8);
  const auto ea = a.events(), eb = b.events();
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_FALSE(ea.empty()) << "mtbf = horizon/4 should sample some faults";
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_DOUBLE_EQ(ea[i].at, eb[i].at);
    EXPECT_EQ(ea[i].node, eb[i].node);
    EXPECT_DOUBLE_EQ(ea[i].factor, eb[i].factor);
  }

  options.seed = 18;
  ChaosEngine c(options);
  c.sample_faults(8);
  const auto ec = c.events();
  bool differs = ec.size() != ea.size();
  for (std::size_t i = 0; !differs && i < ea.size(); ++i) {
    differs = ea[i].at != ec[i].at || ea[i].node != ec[i].node;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same schedule";
}

TEST(ChaosEngine, SamplingSparesTheMasterByDefault) {
  ChaosOptions options;
  options.seed = 3;
  options.mtbf_seconds = 10.0;
  options.horizon_seconds = 100.0;
  ChaosEngine engine(options);
  engine.sample_faults(6);
  ASSERT_FALSE(engine.events().empty());
  for (const ChaosEvent& e : engine.events()) EXPECT_NE(e.node, 0);
}

TEST(ChaosEngine, KillTimeAndSpeedFactorReflectTheSchedule) {
  ChaosEngine engine;
  engine.add_event({ChaosEventKind::kKillNode, 40.0, 2, 1.0});
  engine.add_event({ChaosEventKind::kDegradeNode, 10.0, 1, 0.5});
  engine.add_event({ChaosEventKind::kDegradeNode, 20.0, 1, 0.5});
  EXPECT_TRUE(engine.enabled());
  EXPECT_DOUBLE_EQ(engine.kill_time(2), 40.0);
  EXPECT_TRUE(std::isinf(engine.kill_time(1)));
  EXPECT_DOUBLE_EQ(engine.speed_factor(1, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(engine.speed_factor(1, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(engine.speed_factor(1, 25.0), 0.25);  // compounding
  EXPECT_DOUBLE_EQ(engine.speed_factor(2, 25.0), 1.0);
}

TEST(ChaosEngine, EarliestKillOfANodeWins) {
  ChaosEngine engine;
  engine.add_event({ChaosEventKind::kKillNode, 50.0, 1, 1.0});
  engine.add_event({ChaosEventKind::kKillNode, 20.0, 1, 1.0});
  EXPECT_DOUBLE_EQ(engine.kill_time(1), 20.0);

  int kills = 0;
  engine.set_kill_handler([&](int) {
    ++kills;
    return NodeKillOutcome{};
  });
  engine.advance_to(100.0);
  EXPECT_EQ(kills, 1) << "a node must die at most once";
  EXPECT_EQ(engine.stats().nodes_killed, 1);
}

TEST(ChaosEngine, AdvanceAppliesEachEventExactlyOnceAndNeverRewinds) {
  ChaosEngine engine;
  engine.add_event({ChaosEventKind::kKillNode, 10.0, 1, 1.0});
  engine.add_event({ChaosEventKind::kKillNode, 30.0, 2, 1.0});
  std::vector<int> killed;
  engine.set_kill_handler([&](int node) {
    killed.push_back(node);
    return NodeKillOutcome{};
  });
  engine.advance_to(5.0);
  EXPECT_TRUE(killed.empty());
  engine.advance_to(10.0);  // inclusive boundary
  EXPECT_EQ(killed, (std::vector<int>{1}));
  engine.advance_to(10.0);
  engine.advance_to(2.0);  // rewind attempt: no-op
  EXPECT_EQ(killed, (std::vector<int>{1}));
  engine.advance_to(1e9);
  EXPECT_EQ(killed, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.stats().nodes_killed, 2);
}

TEST(ChaosEngine, ReReplicationSecondsUseTheBandwidth) {
  ChaosEngine engine;
  engine.add_event({ChaosEventKind::kKillNode, 1.0, 1, 1.0});
  engine.set_kill_handler([](int) {
    NodeKillOutcome outcome;
    outcome.re_replicated_bytes = 100;
    outcome.re_replicated_blocks = 2;
    return outcome;
  });
  engine.set_network_bandwidth(50.0);
  engine.advance_to(2.0);
  const RecoveryStats stats = engine.stats();
  EXPECT_EQ(stats.re_replicated_bytes, 100u);
  EXPECT_EQ(stats.re_replicated_blocks, 2);
  EXPECT_DOUBLE_EQ(stats.re_replication_seconds, 2.0);
}

TEST(ChaosEngine, ReadErrorEventsReachTheHandler) {
  ChaosEngine engine;
  engine.add_event({ChaosEventKind::kBlockReadError, 5.0, 3, 1.0});
  std::vector<int> armed;
  engine.set_read_error_handler([&](int node) { armed.push_back(node); });
  engine.advance_to(10.0);
  EXPECT_EQ(armed, (std::vector<int>{3}));
  EXPECT_EQ(engine.stats().read_errors_injected, 1);
}

TEST(ChaosEngine, CorruptEventsReachTheHandlerAndScrubTicksFollow) {
  ChaosEngine engine;
  ChaosEvent event;
  event.kind = ChaosEventKind::kCorruptBlock;
  event.at = 5.0;
  event.node = 2;
  event.salt = 0x51;
  engine.add_event(event);
  std::vector<std::tuple<int, double, std::uint64_t>> corrupted;
  std::vector<double> scrub_ticks;
  engine.set_corrupt_handler([&](int node, double at, std::uint64_t salt) {
    corrupted.emplace_back(node, at, salt);
  });
  engine.set_scrub_handler([&](double t) { scrub_ticks.push_back(t); });
  engine.advance_to(3.0);
  EXPECT_TRUE(corrupted.empty());
  engine.advance_to(10.0);
  ASSERT_EQ(corrupted.size(), 1u);
  EXPECT_EQ(corrupted.front(), std::make_tuple(2, 5.0, std::uint64_t{0x51}));
  EXPECT_EQ(engine.stats().blocks_corrupted, 1);
  // The scrubber hook fires at the end of every advance, corrupt or not.
  EXPECT_EQ(scrub_ticks, (std::vector<double>{3.0, 10.0}));
}

TEST(ChaosEngine, SampleBitrotIsDeterministicAndSalted) {
  ChaosOptions options;
  options.seed = 11;
  options.horizon_seconds = 10000.0;
  options.bitrot_rate = 1e-3;  // expect ~10 events per node
  ChaosEngine a(options), b(options);
  a.sample_bitrot(3);
  b.sample_bitrot(3);
  const std::vector<ChaosEvent> events = a.events();
  ASSERT_FALSE(events.empty());
  const std::vector<ChaosEvent> other = b.events();
  ASSERT_EQ(events.size(), other.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, ChaosEventKind::kCorruptBlock);
    EXPECT_GE(events[i].at, 0.0);
    EXPECT_LT(events[i].at, options.horizon_seconds);
    EXPECT_NE(events[i].salt, 0u) << "bit-rot events must carry a salt so "
                                     "the victim pick is seeded, not biased "
                                     "to the largest block";
    EXPECT_EQ(events[i].at, other[i].at);
    EXPECT_EQ(events[i].node, other[i].node);
    EXPECT_EQ(events[i].salt, other[i].salt);
  }
}

TEST(ChaosEngine, SampleKillTimeIsDeterministicAndInHorizon) {
  ChaosOptions options;
  options.seed = 9;
  options.horizon_seconds = 3600.0;
  ChaosEngine a(options), b(options);
  for (int node = 1; node < 5; ++node) {
    const double t = a.sample_kill_time(node);
    EXPECT_DOUBLE_EQ(t, b.sample_kill_time(node));
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 3600.0);
  }
  EXPECT_NE(a.sample_kill_time(1), a.sample_kill_time(2));
}

TEST(ChaosEngine, RejectsMalformedEvents) {
  ChaosEngine engine;
  EXPECT_THROW(engine.add_event({ChaosEventKind::kKillNode, -1.0, 1, 1.0}),
               Error);
  EXPECT_THROW(engine.add_event({ChaosEventKind::kKillNode, 0.0, -1, 1.0}),
               Error);
  EXPECT_THROW(engine.add_event({ChaosEventKind::kDegradeNode, 0.0, 1, 0.0}),
               Error);
  EXPECT_THROW(engine.add_event({ChaosEventKind::kDegradeNode, 0.0, 1, 1.5}),
               Error);
}

TEST(ChaosEngine, TaskRuleFiresExactlyOnce) {
  ChaosEngine engine;
  engine.add_task_rule({"invert", 2, 0, true});
  EXPECT_FALSE(engine.should_fail_task("invert-l", 1, 0, true));
  EXPECT_TRUE(engine.should_fail_task("invert-l", 2, 0, true));
  EXPECT_FALSE(engine.should_fail_task("invert-l", 2, 0, true));
  EXPECT_EQ(engine.injected_task_count(), 1u);
}

// -- FailureInjector shim ---------------------------------------------------

TEST(FailureInjector, ShimDelegatesToTheEngine) {
  FailureInjector injector;
  injector.add_rule({"lu", 0, 0, true});
  EXPECT_TRUE(injector.should_fail("lu:/Root", 0, 0, true));
  EXPECT_FALSE(injector.should_fail("lu:/Root", 0, 0, true));
  EXPECT_EQ(injector.injected_count(), 1u);
  EXPECT_EQ(injector.engine().injected_task_count(), 1u);
}

// Regression: clear() used to drop the pending rules but keep the injected
// count, so a reused injector reported failures from a previous run.
TEST(FailureInjector, ClearResetsInjectedCount) {
  FailureInjector injector;
  injector.add_rule({"lu", 0, 0, true});
  ASSERT_TRUE(injector.should_fail("lu:/Root", 0, 0, true));
  ASSERT_EQ(injector.injected_count(), 1u);
  injector.clear();
  EXPECT_EQ(injector.injected_count(), 0u);
  EXPECT_FALSE(injector.should_fail("lu:/Root", 0, 1, true))
      << "cleared rules must not fire";
}

}  // namespace
}  // namespace mri
