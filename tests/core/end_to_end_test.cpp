// End-to-end tests of the full MapReduce inversion pipeline: correctness of
// the inverse against the serial reference and the paper's §7.2 residual
// criterion, across matrix orders, cluster sizes, recursion depths and all
// optimization toggles.
#include <gtest/gtest.h>

#include "core/inverter.hpp"
#include "linalg/solve.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

struct PipelineFixture {
  PipelineFixture(int m0, CostModel model = CostModel::ec2_medium())
      : cluster(m0, model),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4) {}

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;

  core::MapReduceInverter::Result run(const Matrix& a,
                                      core::InversionOptions opts) {
    core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    return inverter.invert(a, opts);
  }
};

TEST(EndToEnd, SmallMatrixSingleNode) {
  PipelineFixture fx(1);
  const Matrix a = random_matrix(16, /*seed=*/1);
  core::InversionOptions opts;
  opts.nb = 8;
  auto result = fx.run(a, opts);
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-9);
}

TEST(EndToEnd, MatchesSerialReference) {
  PipelineFixture fx(4);
  const Matrix a = random_matrix(64, /*seed=*/7);
  core::InversionOptions opts;
  opts.nb = 16;
  auto result = fx.run(a, opts);
  const Matrix reference = invert_via_lu(a);
  EXPECT_LT(max_abs_diff(result.inverse, reference), 1e-8);
}

TEST(EndToEnd, PivotHostileMatrix) {
  PipelineFixture fx(4);
  const Matrix a = random_pivot_hostile(48, /*seed=*/3);
  core::InversionOptions opts;
  opts.nb = 12;
  auto result = fx.run(a, opts);
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-6);
}

TEST(EndToEnd, JobCountMatchesPlan) {
  PipelineFixture fx(4);
  const Matrix a = random_matrix(64, /*seed=*/11);
  core::InversionOptions opts;
  opts.nb = 8;  // depth 3 -> 2^3 + 1 = 9 jobs
  auto result = fx.run(a, opts);
  EXPECT_EQ(result.plan.depth, 3);
  EXPECT_EQ(result.report.jobs, 9);
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-8);
}

struct SweepParam {
  Index n;
  Index nb;
  int m0;
  bool separate_files;
  bool block_wrap;
  bool transposed_u;
};

class EndToEndSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EndToEndSweep, InvertsCorrectly) {
  const SweepParam p = GetParam();
  PipelineFixture fx(p.m0);
  const Matrix a = random_matrix(p.n, /*seed=*/p.n * 1000 + p.m0);
  core::InversionOptions opts;
  opts.nb = p.nb;
  opts.separate_intermediate_files = p.separate_files;
  opts.block_wrap = p.block_wrap;
  opts.transposed_u = p.transposed_u;
  auto result = fx.run(a, opts);
  // §7.2: every element of I - A·A⁻¹ below 1e-5 (we meet a tighter bound at
  // these orders).
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-5);
  const Matrix reference = invert_via_lu(a);
  EXPECT_LT(max_abs_diff(result.inverse, reference), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EndToEndSweep,
    ::testing::Values(
        SweepParam{8, 8, 1, true, true, true},     // depth 0, single node
        SweepParam{9, 8, 2, true, true, true},     // odd order
        SweepParam{32, 8, 2, true, true, true},    // depth 2
        SweepParam{33, 8, 4, true, true, true},    // odd order, depth 3
        SweepParam{64, 8, 8, true, true, true},    // deeper than wide
        SweepParam{40, 16, 6, true, true, true},   // m0 not a power of two
        SweepParam{64, 16, 16, true, true, true},  // m0 > stripes per side
        SweepParam{50, 64, 4, true, true, true},   // n < nb: depth 0
        SweepParam{31, 7, 5, true, true, true}));  // everything odd

INSTANTIATE_TEST_SUITE_P(
    Optimizations, EndToEndSweep,
    ::testing::Values(
        SweepParam{48, 12, 4, false, true, true},   // combine penalty path
        SweepParam{48, 12, 4, true, false, true},   // no block wrap
        SweepParam{48, 12, 4, true, true, false},   // untransposed U
        SweepParam{48, 12, 4, false, false, false}  // everything off
        ));

TEST(EndToEnd, OverlapFinalStageMatchesSequential) {
  // DAG mode splits the final job into {invert-l, invert-u} -> invert-mul.
  // Same arithmetic, same inverse; two extra jobs; and because L⁻¹ and U⁻¹
  // share the cluster concurrently, the makespan lands below the serial sum
  // of the job times.
  const Matrix a = random_matrix(64, /*seed=*/7);
  core::InversionOptions opts;
  opts.nb = 16;

  PipelineFixture seq_fx(4);
  auto seq = seq_fx.run(a, opts);

  PipelineFixture dag_fx(4);
  opts.overlap_final_stage = true;
  auto dag = dag_fx.run(a, opts);

  EXPECT_EQ(max_abs_diff(dag.inverse, seq.inverse), 0.0);  // same arithmetic
  EXPECT_EQ(dag.report.jobs, seq.report.jobs + 2);
  EXPECT_EQ(dag.det_log_abs, seq.det_log_abs);
  EXPECT_EQ(dag.det_sign, seq.det_sign);

  double serial_sum = dag.report.master_seconds;
  for (const mr::JobResult& job : dag.jobs) serial_sum += job.sim_seconds;
  EXPECT_LT(dag.report.sim_seconds, serial_sum);

  // The last three jobs are the diamond: invert-l and invert-u overlap.
  ASSERT_GE(dag.jobs.size(), 3u);
  const mr::JobResult& jl = dag.jobs[dag.jobs.size() - 3];
  const mr::JobResult& ju = dag.jobs[dag.jobs.size() - 2];
  const mr::JobResult& jm = dag.jobs.back();
  EXPECT_EQ(jl.name, "invert-l");
  EXPECT_EQ(ju.name, "invert-u");
  EXPECT_EQ(jm.name, "invert-mul");
  EXPECT_EQ(jl.start_seconds, ju.start_seconds);
  EXPECT_GE(jm.start_seconds,
            std::max(jl.start_seconds + jl.sim_seconds,
                     ju.start_seconds + ju.sim_seconds) -
                1e-12);

  // Stage accounting still covers the whole run.
  EXPECT_EQ(dag.inversion_stage.jobs, 3);
  EXPECT_EQ(dag.lu_stage.jobs + dag.inversion_stage.jobs, dag.report.jobs);
  EXPECT_NEAR(dag.lu_stage.sim_seconds + dag.inversion_stage.sim_seconds,
              dag.report.sim_seconds, 1e-9);
}

TEST(EndToEnd, SingularMatrixThrows) {
  PipelineFixture fx(2);
  Matrix a = random_matrix(16, /*seed=*/5);
  // An exactly-zero row stays exactly zero through elimination, so the
  // leaf LU hits a hard zero pivot.
  for (Index j = 0; j < 16; ++j) a(0, j) = 0.0;
  core::InversionOptions opts;
  opts.nb = 8;
  EXPECT_THROW(fx.run(a, opts), NumericalError);
}

TEST(EndToEnd, FaultInjectionRecovers) {
  MetricsRegistry metrics;
  Cluster cluster(4, CostModel::ec2_medium());
  dfs::Dfs fs(4, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  FailureInjector failures;
  failures.add_rule(FailureRule{"invert", /*task=*/1, /*attempt=*/0, true});

  core::MapReduceInverter inverter(&cluster, &fs, &pool, &failures, &metrics);
  const Matrix a = random_matrix(32, /*seed=*/9);
  core::InversionOptions opts;
  opts.nb = 16;
  auto result = inverter.invert(a, opts);

  EXPECT_EQ(result.report.failures_recovered, 1);
  EXPECT_EQ(failures.injected_count(), 1u);
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-8);

  // The same run without the failure must be strictly faster in simulated
  // time (§7.4: 5 h clean vs 8 h with one failed mapper).
  PipelineFixture clean(4);
  auto clean_result = clean.run(a, opts);
  EXPECT_GT(result.report.sim_seconds, clean_result.report.sim_seconds);
}

}  // namespace
}  // namespace mri
