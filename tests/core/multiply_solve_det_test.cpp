// The composable library operations built on the pipeline substrate:
// the block-wrapped MapReduce multiply job, A·X = B solving, and the
// determinant read off the LU factors.
#include <gtest/gtest.h>

#include <cmath>

#include "core/inverter.hpp"
#include "core/multiply_job.hpp"
#include "linalg/lu.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri::core {
namespace {

struct Fixture {
  explicit Fixture(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, nullptr, &metrics),
        pipeline(&runner) {
    for (int j = 0; j < m0; ++j) {
      const std::string p = "/Root/MapInput/A." + std::to_string(j);
      fs.write_text(p, std::to_string(j));
      control_files.push_back(p);
    }
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  mr::JobRunner runner;
  mr::Pipeline pipeline;
  std::vector<std::string> control_files;
};

class MultiplySweep
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index, int>> {};

TEST_P(MultiplySweep, MatchesSerial) {
  const auto [r, k, c, m0] = GetParam();
  Fixture fx(m0);
  const Matrix a = random_matrix(r, k, /*seed=*/r + k, -1, 1);
  const Matrix b = random_matrix(k, c, /*seed=*/k + c + 1, -1, 1);
  const Matrix product = mapreduce_multiply(&fx.pipeline, &fx.fs, m0, a, b,
                                            "/Root", fx.control_files);
  EXPECT_LT(max_abs_diff(product, matmul(a, b)), 1e-10);
  EXPECT_EQ(fx.pipeline.job_count(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiplySweep,
    ::testing::Values(std::make_tuple<Index, Index, Index, int>(16, 16, 16, 1),
                      std::make_tuple<Index, Index, Index, int>(32, 16, 8, 4),
                      std::make_tuple<Index, Index, Index, int>(7, 23, 11, 6),
                      std::make_tuple<Index, Index, Index, int>(64, 64, 64, 16),
                      std::make_tuple<Index, Index, Index, int>(5, 5, 5, 8)));

TEST(MultiplyJob, ShapeMismatchThrows) {
  Fixture fx(2);
  EXPECT_THROW(mapreduce_multiply(&fx.pipeline, &fx.fs, 2, Matrix(3, 4),
                                  Matrix(5, 2), "/Root", fx.control_files),
               InvalidArgument);
}

TEST(MultiplyJob, ChargesBlockWrapReads) {
  Fixture fx(16);
  const Index n = 64;
  const Matrix a = random_matrix(n, /*seed=*/3);
  const Matrix b = random_matrix(n, /*seed=*/4);
  mapreduce_multiply(&fx.pipeline, &fx.fs, 16, a, b, "/Root",
                     fx.control_files);
  // §6.2: total reducer reads ≈ (f1+f2)·n² elements = 8n² at m0=16 (+
  // headers); far below the naive (m0+1)·n².
  const double elements =
      static_cast<double>(fx.pipeline.total_io().bytes_read) / 8.0;
  const double n2 = static_cast<double>(n * n);
  EXPECT_LT(elements, 10.0 * n2);
  EXPECT_GT(elements, 7.0 * n2);
}

TEST(Solve, MatchesDirectSolve) {
  MetricsRegistry metrics;
  Cluster cluster(4, CostModel::ec2_medium());
  dfs::Dfs fs(4, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  const Matrix a = random_matrix(48, /*seed=*/5);
  const Matrix b = random_matrix(48, 6, /*seed=*/6, -1, 1);
  InversionOptions opts;
  opts.nb = 12;
  const auto result = inverter.solve(a, b, opts);
  EXPECT_LT(max_abs_diff(matmul(a, result.x), b), 1e-8);
  // Inversion jobs (2^d + 1 with d = ceil(log2(48/12)) = 2) + one multiply.
  EXPECT_EQ(result.report.jobs, total_job_count(48, 12) + 1);
}

TEST(Determinant, MatchesSerialLu) {
  MetricsRegistry metrics;
  Cluster cluster(4, CostModel::ec2_medium());
  dfs::Dfs fs(4, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);

  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Matrix a = random_matrix(24, seed);
    InversionOptions opts;
    opts.nb = 6;
    const auto result = inverter.invert(a, opts);

    // Serial reference determinant from a plain LU.
    const LuResult lu = lu_decompose(a);
    double ref_log = 0.0;
    int ref_sign = lu.perm.parity();
    for (Index i = 0; i < 24; ++i) {
      const double u = lu.packed(i, i);
      ref_log += std::log(std::abs(u));
      if (u < 0.0) ref_sign = -ref_sign;
    }
    EXPECT_NEAR(result.det_log_abs, ref_log, 1e-8) << "seed " << seed;
    EXPECT_EQ(result.det_sign, ref_sign) << "seed " << seed;
  }
}

TEST(Determinant, KnownSmallCases) {
  MetricsRegistry metrics;
  Cluster cluster(2, CostModel::ec2_medium());
  dfs::Dfs fs(2, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(2);
  MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  // det([[2,0,..],[0,3,..]] diag(2,3,4,5)) = 120.
  Matrix a(4, 4);
  a(0, 0) = 2;
  a(1, 1) = 3;
  a(2, 2) = 4;
  a(3, 3) = 5;
  InversionOptions opts;
  opts.nb = 2;
  const auto result = inverter.invert(a, opts);
  EXPECT_EQ(result.det_sign, 1);
  EXPECT_NEAR(std::exp(result.det_log_abs), 120.0, 1e-9);
}

TEST(Permutation, ParityBasics) {
  EXPECT_EQ(Permutation(5).parity(), 1);
  Permutation p(4);
  p.swap(0, 1);
  EXPECT_EQ(p.parity(), -1);
  p.swap(2, 3);
  EXPECT_EQ(p.parity(), 1);
  // A 3-cycle is even.
  EXPECT_EQ(Permutation(std::vector<Index>{1, 2, 0}).parity(), 1);
}

}  // namespace
}  // namespace mri::core
