// The distributed block-LU pipeline in isolation: PA = LU reconstruction
// from the assembled factors, file layout properties (§6.1), and the I/O
// shape of the jobs.
#include <gtest/gtest.h>

#include "core/assemble.hpp"
#include "core/lu_pipeline.hpp"
#include "core/partition.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/generate.hpp"
#include "matrix/layout.hpp"
#include "matrix/ops.hpp"

namespace mri::core {
namespace {

struct LuFixture {
  explicit LuFixture(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, nullptr, &metrics),
        pipeline(&runner) {}

  /// Runs partition + LU pipeline; returns the factor tree.
  LuNodePtr factor(const Matrix& a, InversionOptions opts) {
    write_matrix(fs, "/Root/a.bin", a);
    std::vector<std::string> controls;
    for (int j = 0; j < cluster.size(); ++j) {
      const std::string p = "/Root/MapInput/A." + std::to_string(j);
      fs.write_text(p, std::to_string(j));
      controls.push_back(p);
    }
    const PartitionGeometry geom =
        make_partition_geometry(a.rows(), opts.nb, cluster.size(), "/Root");
    pipeline.run(make_partition_job(geom, "/Root/a.bin", controls));
    LuPipeline lu(&pipeline, &fs, opts, cluster.size(),
                  cluster.cost_model().column_stride_penalty, controls);
    return lu.factor_partitioned(geom);
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  mr::JobRunner runner;
  mr::Pipeline pipeline;
};

void expect_factors(const dfs::Dfs& fs, const LuNode& node, const Matrix& a,
                    double tol) {
  const Matrix l = assemble_l(fs, node);
  const Matrix ut = assemble_ut(fs, node);
  const Matrix pa = node.perm.apply_to_rows(a);
  EXPECT_LT(max_abs_diff(matmul(l, transpose(ut)), pa), tol);
  // L unit lower; Uᵀ lower.
  for (Index i = 0; i < l.rows(); ++i) {
    EXPECT_EQ(l(i, i), 1.0);
    for (Index j = i + 1; j < l.cols(); ++j) {
      EXPECT_EQ(l(i, j), 0.0);
      EXPECT_EQ(ut(i, j), 0.0);
    }
  }
}

TEST(LuPipeline, FactorsMatchDepth1) {
  LuFixture fx(2);
  const Matrix a = random_matrix(16, /*seed=*/1);
  InversionOptions opts;
  opts.nb = 8;
  const LuNodePtr root = fx.factor(a, opts);
  EXPECT_FALSE(root->leaf);
  EXPECT_TRUE(root->first->leaf);
  EXPECT_TRUE(root->second->leaf);
  expect_factors(fx.fs, *root, a, 1e-11);
}

TEST(LuPipeline, FactorsMatchDeep) {
  LuFixture fx(4);
  const Matrix a = random_matrix(48, /*seed=*/2);
  InversionOptions opts;
  opts.nb = 6;  // depth 3
  const LuNodePtr root = fx.factor(a, opts);
  expect_factors(fx.fs, *root, a, 1e-9);
}

TEST(LuPipeline, OddSizesAndUntransposed) {
  LuFixture fx(3);
  const Matrix a = random_matrix(37, /*seed=*/3);
  InversionOptions opts;
  opts.nb = 5;
  opts.transposed_u = false;
  const LuNodePtr root = fx.factor(a, opts);
  expect_factors(fx.fs, *root, a, 1e-9);
}

TEST(LuPipeline, JobCountAndMasterWork) {
  LuFixture fx(2);
  const Matrix a = random_matrix(32, /*seed=*/4);
  InversionOptions opts;
  opts.nb = 8;  // depth 2: 3 LU jobs + partition
  fx.factor(a, opts);
  EXPECT_EQ(fx.pipeline.job_count(), 4);
  EXPECT_GT(fx.pipeline.master_seconds(), 0.0);  // 4 leaf LUs on the master
}

TEST(LuPipeline, FactorFileCountMatchesFormula) {
  // §6.1: N(d) = 2^d + (m0/2)(2^d - 1) files for L when every level's L2'
  // is striped over m0/2 workers. Holds when every stripe is non-empty.
  LuFixture fx(4);
  const Matrix a = random_matrix(64, /*seed=*/5);
  InversionOptions opts;
  opts.nb = 16;  // depth 2
  const LuNodePtr root = fx.factor(a, opts);
  EXPECT_EQ(factor_file_count(*root), intermediate_file_count(2, 4));
}

TEST(LuPipeline, CombinePenaltyAddsMasterTime) {
  const Matrix a = random_matrix(32, /*seed=*/6);
  InversionOptions opts;
  opts.nb = 8;

  LuFixture with_opt(4);
  with_opt.factor(a, opts);

  opts.separate_intermediate_files = false;
  LuFixture without_opt(4);
  without_opt.factor(a, opts);

  EXPECT_GT(without_opt.pipeline.master_seconds(),
            with_opt.pipeline.master_seconds());
  EXPECT_GT(without_opt.pipeline.total_sim_seconds(),
            with_opt.pipeline.total_sim_seconds());
}

TEST(LuPipeline, BlockWrapReducesReadVolume) {
  // §6.2: with block wrap the LU jobs' reducers read (f1+f2)/m0-ish of the
  // operand volume instead of reading U2 whole per reducer.
  const Matrix a = random_matrix(64, /*seed=*/7);
  InversionOptions opts;
  opts.nb = 32;  // depth 1: exactly one LU job

  LuFixture wrapped(16);
  wrapped.factor(a, opts);
  const auto wrapped_read = wrapped.pipeline.total_io().bytes_read;

  opts.block_wrap = false;
  LuFixture naive(16);
  naive.factor(a, opts);
  const auto naive_read = naive.pipeline.total_io().bytes_read;

  EXPECT_LT(wrapped_read, naive_read);
}

TEST(LuPipeline, WritesStayNearTheory) {
  // Table 1: total factor + B writes ≈ (3/2)n² elements. Allow generous
  // slack for headers, permutations and partition-piece padding.
  LuFixture fx(4);
  const Index n = 64;
  const Matrix a = random_matrix(n, /*seed=*/8);
  InversionOptions opts;
  opts.nb = 8;
  fx.factor(a, opts);
  const double elements =
      static_cast<double>(fx.pipeline.total_io().bytes_written) / 8.0;
  const double n2 = static_cast<double>(n) * n;
  // Pipeline writes exclude the partition job's copy of A (n²): subtract.
  EXPECT_GT(elements, 1.2 * n2);  // partition n² + factors ~n²/2+
  EXPECT_LT(elements, 3.2 * n2);
}

}  // namespace
}  // namespace mri::core
