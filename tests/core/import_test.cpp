// Parallel text-matrix import (Hadoop TextInputFormat split semantics):
// byte splits extended to whole lines, two-pass row-offset computation.
#include <gtest/gtest.h>

#include "core/import.hpp"
#include "core/inverter.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "matrix/text_format.hpp"

namespace mri::core {
namespace {

struct Fixture {
  explicit Fixture(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, nullptr, &metrics),
        pipeline(&runner) {
    for (int j = 0; j < m0; ++j) {
      const std::string p = "/Root/MapInput/A." + std::to_string(j);
      fs.write_text(p, std::to_string(j));
      control_files.push_back(p);
    }
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  mr::JobRunner runner;
  mr::Pipeline pipeline;
  std::vector<std::string> control_files;
};

class ImportSweep : public ::testing::TestWithParam<std::tuple<Index, int>> {};

TEST_P(ImportSweep, RoundTripsThroughText) {
  const auto [n, m0] = GetParam();
  Fixture fx(m0);
  const Matrix a = random_matrix(n, /*seed=*/n * 7 + m0);
  fx.fs.write_text("/Root/a.txt", matrix_to_text(a));

  const Index imported =
      import_text_matrix(&fx.pipeline, &fx.fs, "/Root/a.txt", "/Root/a.bin",
                         fx.control_files);
  EXPECT_EQ(imported, n);
  EXPECT_EQ(read_matrix(fx.fs, "/Root/a.bin"), a);
  EXPECT_EQ(fx.pipeline.job_count(), 2);  // count pass + parse pass
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ImportSweep,
    ::testing::Values(std::make_tuple<Index, int>(1, 1),
                      std::make_tuple<Index, int>(3, 4),  // fewer rows than mappers
                      std::make_tuple<Index, int>(16, 1),
                      std::make_tuple<Index, int>(16, 3),
                      std::make_tuple<Index, int>(33, 8),
                      std::make_tuple<Index, int>(64, 5)));

TEST(Import, ExtremeValuesSurvive) {
  Fixture fx(3);
  Matrix a(2, 2, {1e-300, -1e300, 3.141592653589793, -0.0});
  fx.fs.write_text("/Root/a.txt", matrix_to_text(a));
  import_text_matrix(&fx.pipeline, &fx.fs, "/Root/a.txt", "/Root/a.bin",
                     fx.control_files);
  EXPECT_EQ(read_matrix(fx.fs, "/Root/a.bin"), a);
}

TEST(Import, NonSquareRejected) {
  Fixture fx(2);
  fx.fs.write_text("/Root/rect.txt", "1 2 3\n4 5 6\n");
  EXPECT_THROW(import_text_matrix(&fx.pipeline, &fx.fs, "/Root/rect.txt",
                                  "/Root/rect.bin", fx.control_files),
               InvalidArgument);
}

TEST(Import, EmptyRejected) {
  Fixture fx(2);
  fx.fs.write_text("/Root/empty.txt", "\n\n");
  EXPECT_THROW(import_text_matrix(&fx.pipeline, &fx.fs, "/Root/empty.txt",
                                  "/Root/empty.bin", fx.control_files),
               InvalidArgument);
}

TEST(Import, FeedsTheInversionPipeline) {
  // End-to-end: text in, inverse out (the paper's full data path).
  Fixture fx(4);
  const Matrix a = random_matrix(32, /*seed=*/11);
  fx.fs.write_text("/Root/a.txt", matrix_to_text(a));
  import_text_matrix(&fx.pipeline, &fx.fs, "/Root/a.txt", "/Root/a.bin",
                     fx.control_files);

  MapReduceInverter inverter(&fx.cluster, &fx.fs, &fx.pool, nullptr,
                             &fx.metrics);
  InversionOptions opts;
  opts.nb = 8;
  const auto result = inverter.invert_dfs("/Root/a.bin", opts);
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-8);
}

}  // namespace
}  // namespace mri::core
