#include "core/tile_set.hpp"

#include <gtest/gtest.h>

#include "matrix/dfs_io.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri::core {
namespace {

class TileSetTest : public ::testing::Test {
 protected:
  MetricsRegistry metrics;
  dfs::Dfs fs{2, dfs::DfsConfig{}, &metrics};

  /// Writes `m` as a grid of tile files and returns the TileSet.
  TileSet store_grid(const Matrix& m, Index tile_rows, Index tile_cols) {
    std::vector<Tile> tiles;
    int id = 0;
    for (Index r = 0; r < m.rows(); r += tile_rows) {
      for (Index c = 0; c < m.cols(); c += tile_cols) {
        Tile t;
        t.r0 = r;
        t.r1 = std::min(m.rows(), r + tile_rows);
        t.c0 = c;
        t.c1 = std::min(m.cols(), c + tile_cols);
        t.path = "/tiles/t." + std::to_string(id++);
        write_matrix(fs, t.path, m.block(t.r0, t.r1, t.c0, t.c1));
        tiles.push_back(std::move(t));
      }
    }
    return TileSet(m.rows(), m.cols(), std::move(tiles));
  }
};

TEST_F(TileSetTest, ReadAllReconstructs) {
  const Matrix m = random_matrix(12, 10, /*seed=*/1, -1, 1);
  const TileSet ts = store_grid(m, 5, 4);
  EXPECT_EQ(ts.read_all(fs), m);
}

TEST_F(TileSetTest, ReadBlockCrossesTiles) {
  const Matrix m = random_matrix(12, 12, /*seed=*/2, -1, 1);
  const TileSet ts = store_grid(m, 4, 4);
  EXPECT_EQ(ts.read_block(fs, 2, 11, 3, 9), m.block(2, 11, 3, 9));
}

TEST_F(TileSetTest, EmptyBlock) {
  const Matrix m = random_matrix(4, 4, /*seed=*/3, -1, 1);
  const TileSet ts = store_grid(m, 2, 2);
  const Matrix b = ts.read_block(fs, 2, 2, 0, 4);
  EXPECT_EQ(b.rows(), 0);
}

TEST_F(TileSetTest, ChargesOnlyTouchedRows) {
  const Matrix m = random_matrix(16, 8, /*seed=*/4, -1, 1);
  const TileSet ts = store_grid(m, 16, 8);  // single tile
  IoStats io;
  ts.read_block(fs, 0, 2, 0, 8, &io);
  // Two 8-column rows + header; far less than the whole file.
  EXPECT_LT(io.bytes_read, 3 * 8 * sizeof(double) + 64);
}

TEST_F(TileSetTest, UncoveredRectangleThrows) {
  std::vector<Tile> tiles;
  Tile t;
  t.path = "/tiles/partial";
  t.r0 = 0;
  t.r1 = 2;
  t.c0 = 0;
  t.c1 = 4;
  write_matrix(fs, t.path, Matrix(2, 4));
  tiles.push_back(t);
  const TileSet ts(4, 4, std::move(tiles));  // rows 2..4 uncovered
  EXPECT_NO_THROW(ts.read_block(fs, 0, 2, 0, 4));
  EXPECT_THROW(ts.read_block(fs, 0, 4, 0, 4), DfsError);
}

TEST_F(TileSetTest, WindowReadsSubMatrix) {
  const Matrix m = random_matrix(12, 12, /*seed=*/5, -1, 1);
  const TileSet ts = store_grid(m, 4, 4);
  const TileSet w = ts.window(3, 9, 2, 10);
  EXPECT_EQ(w.rows(), 6);
  EXPECT_EQ(w.cols(), 8);
  EXPECT_EQ(w.read_all(fs), m.block(3, 9, 2, 10));
  // Nested windows (the recursive B partitioning).
  const TileSet w2 = w.window(1, 5, 0, 4);
  EXPECT_EQ(w2.read_all(fs), m.block(4, 8, 2, 6));
}

TEST_F(TileSetTest, WindowOfWindowReadBlock) {
  const Matrix m = random_matrix(16, 16, /*seed=*/6, -1, 1);
  const TileSet ts = store_grid(m, 5, 7);
  const TileSet w = ts.window(2, 14, 3, 15);
  EXPECT_EQ(w.read_block(fs, 1, 9, 2, 11), m.block(3, 11, 5, 14));
}

TEST_F(TileSetTest, OutOfBoundsChecked) {
  const Matrix m = random_matrix(4, 4, /*seed=*/7, -1, 1);
  const TileSet ts = store_grid(m, 2, 2);
  EXPECT_THROW(ts.read_block(fs, 0, 5, 0, 4), InvalidArgument);
  EXPECT_THROW(ts.window(0, 5, 0, 4), InvalidArgument);
}

TEST_F(TileSetTest, ManifestIsSmall) {
  // §5.2: partition metadata for B is well under 1 KB.
  const Matrix m = random_matrix(8, 8, /*seed=*/8, -1, 1);
  const TileSet ts = store_grid(m, 4, 4);
  EXPECT_LT(ts.manifest_bytes(), 1024u);
}

}  // namespace
}  // namespace mri::core
