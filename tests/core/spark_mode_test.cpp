// The §8 extension: in-memory intermediates ("implementing our technique on
// Spark... would improve performance by reducing read I/O").
#include <gtest/gtest.h>

#include "core/inverter.hpp"
#include "linalg/solve.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri::core {
namespace {

struct Fixture {
  explicit Fixture(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4) {}

  MapReduceInverter::Result run(const Matrix& a, InversionOptions opts) {
    MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    return inverter.invert(a, opts);
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
};

TEST(SparkMode, SameInverse) {
  const Matrix a = random_matrix(48, /*seed=*/1);
  InversionOptions opts;
  opts.nb = 12;
  opts.in_memory_intermediates = true;
  Fixture fx(4);
  const auto result = fx.run(a, opts);
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-8);
  EXPECT_LT(max_abs_diff(result.inverse, invert_via_lu(a)), 1e-8);
}

TEST(SparkMode, MovesIntermediateWritesToMemory) {
  const Matrix a = random_matrix(64, /*seed=*/2);
  InversionOptions opts;
  opts.nb = 16;

  Fixture disk(4);
  const auto on_disk = disk.run(a, opts);

  opts.in_memory_intermediates = true;
  Fixture memory(4);
  const auto in_memory = memory.run(a, opts);

  // Disk mode: no memory-tier writes. Spark mode: all intermediates are
  // memory-tier; the only disk writes left are the final inverse blocks.
  EXPECT_EQ(on_disk.report.io.bytes_written_memory, 0u);
  EXPECT_GT(in_memory.report.io.bytes_written_memory, 0u);
  const std::uint64_t n2_bytes = 64u * 64u * sizeof(double);
  EXPECT_LT(in_memory.report.io.bytes_written, 2 * n2_bytes);
  EXPECT_GT(on_disk.report.io.bytes_written,
            2 * in_memory.report.io.bytes_written);
  // No replication traffic for memory-tier intermediates.
  EXPECT_LT(in_memory.report.io.bytes_replicated,
            on_disk.report.io.bytes_replicated);
}

TEST(SparkMode, FasterThanDiskMode) {
  // The predicted §8 outcome: same pipeline, less write/replication time.
  const Matrix a = random_matrix(64, /*seed=*/3);
  InversionOptions opts;
  opts.nb = 8;

  Fixture disk(8);
  const auto on_disk = disk.run(a, opts);
  opts.in_memory_intermediates = true;
  Fixture memory(8);
  const auto in_memory = memory.run(a, opts);

  EXPECT_LT(in_memory.report.sim_seconds, on_disk.report.sim_seconds);
  // Same pipeline shape.
  EXPECT_EQ(in_memory.report.jobs, on_disk.report.jobs);
}

TEST(SparkMode, ComposesWithOtherOptions) {
  const Matrix a = random_matrix(40, /*seed=*/4);
  InversionOptions opts;
  opts.nb = 10;
  opts.in_memory_intermediates = true;
  opts.block_wrap = false;
  opts.transposed_u = false;
  Fixture fx(3);
  const auto result = fx.run(a, opts);
  EXPECT_LT(inversion_residual(a, result.inverse), 1e-8);
}

}  // namespace
}  // namespace mri::core
