#include "core/factor_io.hpp"

#include <gtest/gtest.h>

#include "linalg/lu.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri::core {
namespace {

class FactorIoTest : public ::testing::Test {
 protected:
  dfs::Dfs fs{2};
};

TEST_F(FactorIoTest, PackedRoundTrip) {
  const LuResult lu = lu_decompose(random_matrix(12, /*seed=*/1));
  write_packed_lu(fs, "/lu.bin", lu.packed);
  EXPECT_EQ(read_packed_lu(fs, "/lu.bin"), lu.packed);
}

TEST_F(FactorIoTest, UnpackMatchesLuResult) {
  const LuResult lu = lu_decompose(random_matrix(10, /*seed=*/2));
  EXPECT_EQ(unpack_unit_lower(lu.packed), lu.unit_lower());
  EXPECT_EQ(unpack_upper(lu.packed), lu.upper());
  EXPECT_EQ(unpack_upper_transposed(lu.packed), transpose(lu.upper()));
}

TEST_F(FactorIoTest, PackedMustBeSquare) {
  EXPECT_THROW(write_packed_lu(fs, "/bad", Matrix(2, 3)), InvalidArgument);
}

TEST_F(FactorIoTest, LowerPackedRoundTripUnitDiag) {
  const Matrix l = random_unit_lower_triangular(11, /*seed=*/3);
  write_lower_packed(fs, "/l.tri", l, /*unit_diag=*/true);
  EXPECT_EQ(read_lower_packed(fs, "/l.tri"), l);
}

TEST_F(FactorIoTest, LowerPackedRoundTripWithDiag) {
  const Matrix u = random_upper_triangular(9, /*seed=*/4);
  const Matrix ut = transpose(u);
  write_lower_packed(fs, "/ut.tri", ut, /*unit_diag=*/false);
  EXPECT_EQ(read_lower_packed(fs, "/ut.tri"), ut);
}

TEST_F(FactorIoTest, LowerPackedHalvesBytes) {
  const Index n = 32;
  const Matrix l = random_unit_lower_triangular(n, /*seed=*/5);
  IoStats io;
  write_lower_packed(fs, "/l32.tri", l, /*unit_diag=*/true, &io);
  // Strictly-lower entries only: n(n-1)/2 doubles + 24-byte header.
  EXPECT_EQ(io.bytes_written, 24u + n * (n - 1) / 2 * sizeof(double));
}

TEST_F(FactorIoTest, LowerPackedPlusUpperIsExactlyNSquared) {
  // The paper's Table 1 write volume: an l file and a uᵀ file together hold
  // exactly n² doubles.
  const Index n = 16;
  IoStats io;
  write_lower_packed(fs, "/a.tri", random_unit_lower_triangular(n, 6), true,
                     &io);
  write_lower_packed(fs, "/b.tri", transpose(random_upper_triangular(n, 7)),
                     false, &io);
  EXPECT_EQ(io.bytes_written, 48u + n * n * sizeof(double));
}

TEST_F(FactorIoTest, PermutationRoundTrip) {
  Permutation p(std::vector<Index>{3, 1, 4, 0, 2});
  write_permutation(fs, "/p.bin", p);
  EXPECT_EQ(read_permutation(fs, "/p.bin"), p);
}

TEST_F(FactorIoTest, PermutationReadValidates) {
  // Corrupt file: duplicate entries must be rejected on read.
  auto w = fs.create("/bad_p");
  w.write_u64(2);
  w.write_u64(0);
  w.write_u64(0);
  w.close();
  EXPECT_THROW(read_permutation(fs, "/bad_p"), InvalidArgument);
}

TEST_F(FactorIoTest, PermutationAccounting) {
  IoStats io;
  write_permutation(fs, "/p2.bin", Permutation(100), &io);
  EXPECT_EQ(io.bytes_written, 101u * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace mri::core
