// The partition job (Algorithm 3) and its geometry: the materialized region
// TileSets must reproduce exactly the blocks of the input matrix at every
// left-spine level.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/plan.hpp"
#include "mapreduce/runtime.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri::core {
namespace {

struct PartitionFixture {
  explicit PartitionFixture(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, nullptr, &metrics) {}

  PartitionGeometry run(const Matrix& a, Index nb) {
    write_matrix(fs, "/Root/a.bin", a);
    std::vector<std::string> controls;
    for (int j = 0; j < cluster.size(); ++j) {
      const std::string p = "/Root/MapInput/A." + std::to_string(j);
      fs.write_text(p, std::to_string(j));
      controls.push_back(p);
    }
    PartitionGeometry geom =
        make_partition_geometry(a.rows(), nb, cluster.size(), "/Root");
    runner.run(make_partition_job(geom, "/Root/a.bin", controls));
    return geom;
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  mr::JobRunner runner;
};

TEST(PartitionGeometry, LevelsShrinkByHalving) {
  const PartitionGeometry g = make_partition_geometry(100, 13, 4, "/Root");
  EXPECT_EQ(g.depth, 3);
  ASSERT_EQ(g.levels.size(), 3u);
  EXPECT_EQ(g.levels[0].parent_n, 100);
  EXPECT_EQ(g.levels[0].h, 50);
  EXPECT_EQ(g.levels[1].parent_n, 50);
  EXPECT_EQ(g.levels[1].h, 25);
  EXPECT_EQ(g.levels[2].parent_n, 25);
  EXPECT_EQ(g.levels[2].h, 13);
  EXPECT_EQ(g.leaf_n, 13);
  EXPECT_EQ(g.levels[1].dir, "/Root/A1");
  EXPECT_EQ(g.leaf_dir, "/Root/A1/A1/A1");
}

TEST(PartitionGeometry, RegionFrames) {
  const PartitionGeometry g = make_partition_geometry(100, 13, 4, "/Root");
  const RegionFrame a2 = region_frame(g, 1, Region::kA2);
  EXPECT_EQ(a2.row_off, 0);
  EXPECT_EQ(a2.col_off, 50);
  EXPECT_EQ(a2.rows, 50);
  EXPECT_EQ(a2.cols, 50);
  const RegionFrame a3 = region_frame(g, 2, Region::kA3);
  EXPECT_EQ(a3.row_off, 25);
  EXPECT_EQ(a3.col_off, 0);
  EXPECT_EQ(a3.rows, 25);
  EXPECT_EQ(a3.cols, 25);
  const RegionFrame leaf = region_frame(g, 3, Region::kLeaf);
  EXPECT_EQ(leaf.rows, 13);
}

TEST(PartitionGeometry, PieceFilesAreDisjointPerWriter) {
  // §5.2: no two mappers write the same file.
  const PartitionGeometry g = make_partition_geometry(64, 8, 4, "/Root");
  std::set<std::string> paths;
  for (int level = 1; level <= g.depth; ++level) {
    for (Region r : {Region::kA2, Region::kA3, Region::kA4}) {
      for (const Tile& t : region_pieces(g, level, r)) {
        EXPECT_TRUE(paths.insert(t.path).second) << "duplicate " << t.path;
      }
    }
  }
  for (const Tile& t : region_pieces(g, g.depth, Region::kLeaf)) {
    EXPECT_TRUE(paths.insert(t.path).second);
  }
}

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index, int>> {};

TEST_P(PartitionSweep, RegionsReconstructInput) {
  const auto [n, nb, m0] = GetParam();
  PartitionFixture fx(m0);
  const Matrix a = random_matrix(n, /*seed=*/n + m0);
  const PartitionGeometry geom = fx.run(a, nb);

  for (int level = 1; level <= geom.depth; ++level) {
    for (Region region : {Region::kA2, Region::kA3, Region::kA4}) {
      const RegionFrame f = region_frame(geom, level, region);
      const Matrix stored = region_tiles(geom, level, region).read_all(fx.fs);
      const Matrix expected = a.block(f.row_off, f.row_off + f.rows, f.col_off,
                                      f.col_off + f.cols);
      EXPECT_EQ(stored, expected) << "level " << level;
    }
  }
  const Matrix leaf = region_tiles(geom, geom.depth, Region::kLeaf).read_all(fx.fs);
  EXPECT_EQ(leaf, a.block(0, geom.leaf_n, 0, geom.leaf_n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Values(std::make_tuple<Index, Index, int>(32, 8, 4),
                      std::make_tuple<Index, Index, int>(33, 8, 4),
                      std::make_tuple<Index, Index, int>(40, 5, 3),
                      std::make_tuple<Index, Index, int>(16, 16, 2),
                      std::make_tuple<Index, Index, int>(17, 4, 8),
                      std::make_tuple<Index, Index, int>(64, 8, 1)));

TEST(Plan, WorkerSplitIsBalanced) {
  const InversionPlan p = InversionPlan::make(1000, 100, 10);
  EXPECT_EQ(p.l2_workers + p.u2_workers, 10);
  EXPECT_LE(std::abs(p.l2_workers - p.u2_workers), 1);
  const InversionPlan p1 = InversionPlan::make(1000, 100, 1);
  EXPECT_EQ(p1.l2_workers, 1);
  EXPECT_EQ(p1.u2_workers, 1);
}

TEST(Plan, MatchesTable3) {
  struct Row {
    Index n;
    std::int64_t jobs;
  };
  for (const Row& row : {Row{20480, 9}, Row{32768, 17}, Row{40960, 17},
                         Row{102400, 33}, Row{16384, 9}}) {
    const InversionPlan p = InversionPlan::make(row.n, 3200, 64);
    EXPECT_EQ(p.total_jobs, row.jobs) << "n=" << row.n;
  }
}

}  // namespace
}  // namespace mri::core
