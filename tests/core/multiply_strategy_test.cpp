// The pluggable multiply strategies: multi-round vs block wrap equivalence,
// round/job scheduling, shuffle-byte accounting (the space-round tradeoff)
// and report determinism.
#include "core/multiply_strategy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/inverter.hpp"
#include "mapreduce/trace_export.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "sim/run_report.hpp"

namespace mri::core {
namespace {

struct Fixture {
  explicit Fixture(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, nullptr, &metrics),
        pipeline(&runner) {
    for (int j = 0; j < m0; ++j) {
      const std::string p = "/Root/MapInput/A." + std::to_string(j);
      fs.write_text(p, std::to_string(j));
      control_files.push_back(p);
    }
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  mr::JobRunner runner;
  mr::Pipeline pipeline;
  std::vector<std::string> control_files;
};

MultiplyStrategyOptions multiround(int replication) {
  MultiplyStrategyOptions opts;
  opts.strategy = MultiplyStrategyKind::kMultiRound;
  opts.replication = replication;
  return opts;
}

TEST(MultiplyStrategy, NamesParseAndRoundTrip) {
  MultiplyStrategyKind kind = MultiplyStrategyKind::kWrap;
  EXPECT_TRUE(parse_multiply_strategy("multiround", &kind));
  EXPECT_EQ(kind, MultiplyStrategyKind::kMultiRound);
  EXPECT_TRUE(parse_multiply_strategy("wrap", &kind));
  EXPECT_EQ(kind, MultiplyStrategyKind::kWrap);
  EXPECT_FALSE(parse_multiply_strategy("broadcast", &kind));
  EXPECT_EQ(kind, MultiplyStrategyKind::kWrap);  // untouched on failure
  EXPECT_STREQ(multiply_strategy_name(MultiplyStrategyKind::kWrap), "wrap");
  EXPECT_STREQ(multiply_strategy_name(MultiplyStrategyKind::kMultiRound),
               "multiround");
  EXPECT_STREQ(make_multiply_strategy(MultiplyStrategyKind::kMultiRound)
                   ->name(),
               "multiround");
}

class MultiRoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiRoundSweep, MatchesWrapResultAndSchedulesCeilRounds) {
  const int r = GetParam();
  const int m0 = 8;
  const Index n = 48;
  const Matrix a = random_matrix(n, n, /*seed=*/1, -1, 1);
  const Matrix b = random_matrix(n, 24, /*seed=*/2, -1, 1);

  Fixture wrap_fx(m0);
  const Matrix wrap = mapreduce_multiply(&wrap_fx.pipeline, &wrap_fx.fs, m0, a,
                                         b, "/Root", wrap_fx.control_files);

  Fixture fx(m0);
  MultiplyPlan plan;
  const Matrix c =
      mapreduce_multiply(&fx.pipeline, &fx.fs, m0, a, b, "/Root",
                         fx.control_files, multiround(r), {}, &plan);
  EXPECT_LT(max_abs_diff(c, wrap), 1e-11);
  EXPECT_LT(max_abs_diff(c, matmul(a, b)), 1e-10);
  const int clamped = std::min(r, m0);
  const int expected_rounds = (m0 + clamped - 1) / clamped;
  EXPECT_EQ(plan.rounds, expected_rounds);
  EXPECT_EQ(plan.segments, m0);
  EXPECT_EQ(plan.replication, clamped);
  EXPECT_EQ(fx.pipeline.job_count(), expected_rounds);
}

INSTANTIATE_TEST_SUITE_P(Replication, MultiRoundSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 100));

TEST(MultiplyStrategy, FullReplicationDegeneratesToOneRound) {
  const int m0 = 6;
  const Matrix a = random_matrix(30, 30, /*seed=*/3, -1, 1);
  const Matrix b = random_matrix(30, 18, /*seed=*/4, -1, 1);
  Fixture fx(m0);
  MultiplyPlan plan;
  mapreduce_multiply(&fx.pipeline, &fx.fs, m0, a, b, "/Root", fx.control_files,
                     multiround(m0), {}, &plan);
  EXPECT_EQ(plan.rounds, 1);
  EXPECT_EQ(plan.replication, m0);  // clamped even when asked for more
  EXPECT_EQ(fx.pipeline.job_count(), 1);
}

TEST(MultiplyStrategy, ShuffleBytesTradeRoundsForMemory) {
  // The space-round tradeoff: raising r shrinks the round count and the
  // carry-tile traffic (2(R-1) extra C-sized passes) but grows the per-task
  // operand footprint. Operand reads themselves are r-independent (block
  // ingest charges exact segment bytes).
  const int m0 = 8;
  const Index n = 64;
  const Matrix a = random_matrix(n, n, /*seed=*/5, -1, 1);
  const Matrix b = random_matrix(n, n, /*seed=*/6, -1, 1);

  std::uint64_t prev_total = ~0ull;
  std::uint64_t prev_peak = 0;
  int prev_rounds = m0 + 1;
  for (const int r : {1, 2, 4, 8}) {
    Fixture fx(m0);
    MultiplyPlan plan;
    mapreduce_multiply(&fx.pipeline, &fx.fs, m0, a, b, "/Root",
                       fx.control_files, multiround(r), {}, &plan);
    const IoStats io = fx.pipeline.total_io();
    const std::uint64_t total = io.bytes_read + io.bytes_written;
    EXPECT_LT(plan.rounds, prev_rounds) << "r=" << r;
    EXPECT_LT(total, prev_total) << "r=" << r;
    EXPECT_GE(plan.peak_task_bytes, prev_peak) << "r=" << r;
    prev_total = total;
    prev_peak = plan.peak_task_bytes;
    prev_rounds = plan.rounds;
  }
}

TEST(MultiplyStrategy, CarryTrafficMatchesModel) {
  // r=1 vs r=m0: the byte difference between the R-round run and the
  // single-round run is the carry chain — 2(R-1)·|C| elements (each inner
  // round writes its carry once and the next round reads it back).
  const int m0 = 4;
  const Index n = 40;
  const Matrix a = random_matrix(n, n, /*seed=*/7, -1, 1);
  const Matrix b = random_matrix(n, n, /*seed=*/8, -1, 1);

  auto run_bytes = [&](int r) {
    Fixture fx(m0);
    mapreduce_multiply(&fx.pipeline, &fx.fs, m0, a, b, "/Root",
                       fx.control_files, multiround(r));
    const IoStats io = fx.pipeline.total_io();
    return io.bytes_read + io.bytes_written;
  };
  const std::uint64_t chained = run_bytes(1);   // R = 4 rounds
  const std::uint64_t one_shot = run_bytes(4);  // R = 1 round
  const std::uint64_t carry_elements = 2ull * (4 - 1) * n * n;
  const std::uint64_t diff = chained - one_shot;
  // Exact up to per-file headers on the carry tiles.
  EXPECT_GE(diff, carry_elements * 8);
  EXPECT_LT(diff, carry_elements * 8 + 4096);
}

TEST(MultiplyStrategy, MultiRoundJobsAreNamedPerRound) {
  const int m0 = 4;
  Fixture fx(m0);
  const Matrix a = random_matrix(16, 16, /*seed=*/9, -1, 1);
  const Matrix b = random_matrix(16, 16, /*seed=*/10, -1, 1);
  mapreduce_multiply(&fx.pipeline, &fx.fs, m0, a, b, "/Root",
                     fx.control_files, multiround(2));
  const std::vector<mr::JobResult>& jobs = fx.pipeline.jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "multiply-r0");
  EXPECT_EQ(jobs[1].name, "multiply-r1");
}

TEST(MultiplyStrategy, SolveWithMultiRoundMatchesWrapSolve) {
  const Matrix a = random_matrix(48, /*seed=*/11);
  const Matrix b = random_matrix(48, 6, /*seed=*/12, -1, 1);

  auto solve_with = [&](const MultiplyStrategyOptions& strategy) {
    MetricsRegistry metrics;
    Cluster cluster(4, CostModel::ec2_medium());
    dfs::Dfs fs(4, dfs::DfsConfig{}, &metrics);
    ThreadPool pool(4);
    MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    InversionOptions opts;
    opts.nb = 12;
    opts.multiply = strategy;
    return inverter.solve(a, b, opts);
  };

  const auto wrap = solve_with({});
  const auto multi = solve_with(multiround(2));
  EXPECT_LT(max_abs_diff(matmul(a, multi.x), b), 1e-8);
  EXPECT_LT(max_abs_diff(multi.x, wrap.x), 1e-10);
  EXPECT_EQ(multi.multiply_plan.rounds, 2);  // m0=4, r=2
  EXPECT_EQ(wrap.multiply_plan.rounds, 1);
  // The strategy adds (rounds - 1) jobs over the wrap timeline.
  EXPECT_EQ(multi.report.jobs, wrap.report.jobs + 1);
}

TEST(MultiplyStrategy, SameSeedRunsProduceBitIdenticalReports) {
  const Matrix a = random_matrix(36, /*seed=*/13);
  const Matrix b = random_matrix(36, 4, /*seed=*/14, -1, 1);

  auto report_json = [&] {
    MetricsRegistry metrics;
    Cluster cluster(4, CostModel::ec2_medium());
    dfs::Dfs fs(4, dfs::DfsConfig{}, &metrics);
    ThreadPool pool(4);
    MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    InversionOptions opts;
    opts.nb = 12;
    opts.multiply = multiround(3);
    const auto result = inverter.solve(a, b, opts);
    const RunReport report = mr::build_run_report(
        result.jobs, cluster, &metrics, result.master_spans);
    return run_report_json(report);
  };

  const std::string first = report_json();
  const std::string second = report_json();
  EXPECT_EQ(first, second);
  // The kernel section is part of the stable schema even when defaulted.
  EXPECT_NE(first.find("\"kernel\":{\"backend\":\""), std::string::npos);
  EXPECT_NE(first.find("\"multiply_strategy\":\"wrap\""), std::string::npos);
}

}  // namespace
}  // namespace mri::core
