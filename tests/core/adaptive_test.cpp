// The §8 adaptive-engine extension: the analytic predictor must point the
// same way the simulator measures, and the adaptive inverter must produce a
// correct inverse either way it decides.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri::core {
namespace {

CostModel quiet() {
  CostModel m = CostModel::ec2_medium();
  m.node_speed_variance = 0.0;
  return m;
}

TEST(Predict, SmallClusterFavorsScalapack) {
  // The paper (§7.5): at low scale ScaLAPACK is faster — MapReduce pays
  // job launches and HDFS round-trips.
  const PredictedCost c = predict_cost(4096, 512, 4, quiet());
  EXPECT_EQ(c.winner(), Engine::kScaLAPACK);
}

TEST(Predict, LargeScaleFavorsMapReduce) {
  // The paper (§7.4/7.5): at 10⁵ order and 128+ nodes we win.
  const PredictedCost c = predict_cost(102400, 3200, 256, quiet());
  EXPECT_EQ(c.winner(), Engine::kMapReduce);
}

TEST(Predict, CostsArePositiveAndScaleWithN) {
  const PredictedCost small = predict_cost(1000, 100, 8, quiet());
  const PredictedCost big = predict_cost(4000, 400, 8, quiet());
  EXPECT_GT(small.mapreduce_seconds, 0.0);
  EXPECT_GT(small.scalapack_seconds, 0.0);
  EXPECT_GT(big.mapreduce_seconds, small.mapreduce_seconds);
  EXPECT_GT(big.scalapack_seconds, small.scalapack_seconds);
}

TEST(Predict, AgreesWithSimulatedRatios) {
  // Prediction vs measurement: for a grid of cluster sizes, the predicted
  // MapReduce time must track the simulated time within a factor of two
  // (it is a point model, not a re-run of the simulator).
  const Index n = 256;
  const Index nb = 32;
  for (int m0 : {2, 8, 32}) {
    MetricsRegistry metrics;
    Cluster cluster(m0, quiet());
    dfs::Dfs fs(m0, dfs::DfsConfig{}, &metrics);
    ThreadPool pool(4);
    MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    InversionOptions opts;
    opts.nb = nb;
    const auto run = inverter.invert(random_matrix(n, m0), opts);
    const PredictedCost c = predict_cost(n, nb, m0, quiet());
    EXPECT_GT(c.mapreduce_seconds, 0.5 * run.report.sim_seconds)
        << "m0=" << m0;
    EXPECT_LT(c.mapreduce_seconds, 2.0 * run.report.sim_seconds)
        << "m0=" << m0;
  }
}

TEST(Adaptive, ProducesCorrectInverseEitherWay) {
  for (int m0 : {2, 16}) {
    MetricsRegistry metrics;
    Cluster cluster(m0, quiet());
    dfs::Dfs fs(m0, dfs::DfsConfig{}, &metrics);
    ThreadPool pool(4);
    AdaptiveInverter inverter(&cluster, &fs, &pool, &metrics);
    const Matrix a = random_matrix(64, /*seed=*/m0);
    InversionOptions opts;
    opts.nb = 16;
    const auto result = inverter.invert(a, opts);
    EXPECT_LT(inversion_residual(a, result.inverse), 1e-8);
    EXPECT_EQ(result.engine, result.prediction.winner());
    EXPECT_GT(result.report.sim_seconds, 0.0);
  }
}

TEST(Adaptive, EngineNames) {
  EXPECT_STREQ(engine_name(Engine::kMapReduce), "mapreduce");
  EXPECT_STREQ(engine_name(Engine::kScaLAPACK), "scalapack");
}

}  // namespace
}  // namespace mri::core
