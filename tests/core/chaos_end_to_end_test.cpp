// End-to-end chaos acceptance (§7.4): a deterministic run with one node
// killed mid-inversion completes with a correct inverse and non-zero
// recovery accounting, two same-seed runs are bit-identical, and losing
// every replica of a block fails fast with UnrecoverableBlock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/inverter.hpp"
#include "dfs/dfs.hpp"
#include "mapreduce/trace_export.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "sim/chaos.hpp"

namespace mri::core {
namespace {

constexpr Index kOrder = 64;
constexpr Index kNb = 16;  // depth-2 plan on 4 nodes: partition + 3 LU + final
constexpr int kNodes = 4;

CostModel model() { return CostModel::ec2_medium().scaled_down(40.0); }

struct E2eRun {
  bool completed = false;
  std::string error;
  double residual = 0.0;
  double sim_seconds = 0.0;
  RunReport report;
  std::string report_json;
  std::vector<mr::JobResult> jobs;
};

E2eRun run_once(const std::vector<ChaosEvent>& events, int replication = 3) {
  MetricsRegistry metrics;
  Cluster cluster(kNodes, model());
  dfs::DfsConfig cfg;
  cfg.replication = replication;
  dfs::Dfs fs(kNodes, cfg, &metrics);
  ThreadPool pool(4);
  ChaosEngine chaos;
  for (const ChaosEvent& e : events) chaos.add_event(e);
  fs.bind_chaos(&chaos, model().network_bandwidth);

  MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics, &chaos);
  InversionOptions options;
  options.nb = kNb;
  const Matrix a = random_matrix(kOrder, 11);

  E2eRun run;
  try {
    MapReduceInverter::Result result = inverter.invert(a, options);
    run.completed = true;
    run.residual = inversion_residual(a, result.inverse);
    run.sim_seconds = result.report.sim_seconds;
    run.jobs = result.jobs;
    run.report = mr::build_run_report(result.jobs, cluster, &metrics,
                                      result.master_spans, &chaos);
    run.report_json = run_report_json(run.report);
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  return run;
}

/// A kill time inside a reduce window ~halfway through the clean run: the
/// dead node then holds completed map outputs of the job, forcing a
/// recompute wave (not just a slot-pool shrink).
double pick_kill_time(const E2eRun& clean) {
  const double target = 0.5 * clean.sim_seconds;
  double best = -1.0, best_distance = 0.0;
  for (const mr::JobResult& job : clean.jobs) {
    if (job.reduce_phase_seconds <= 0.0) continue;
    const double launch = job.sim_seconds - job.map_phase_seconds -
                          job.reduce_phase_seconds - job.recovery_seconds;
    const double at = job.start_seconds + launch + job.map_phase_seconds +
                      0.25 * job.reduce_phase_seconds;
    const double distance = std::abs(at - target);
    if (best < 0.0 || distance < best_distance) {
      best = at;
      best_distance = distance;
    }
  }
  EXPECT_GE(best, 0.0) << "no job with a reduce phase in the clean run";
  return best;
}

TEST(ChaosEndToEnd, SingleNodeKillRecoversWithCorrectInverse) {
  const E2eRun clean = run_once({});
  ASSERT_TRUE(clean.completed) << clean.error;
  ASSERT_LT(clean.residual, 1e-10);

  const double kill_at = pick_kill_time(clean);
  const E2eRun killed =
      run_once({{ChaosEventKind::kKillNode, kill_at, kNodes - 1, 1.0}});
  ASSERT_TRUE(killed.completed)
      << "run did not survive the node kill: " << killed.error;
  EXPECT_LT(killed.residual, 1e-10) << "recovered inverse lost accuracy";
  EXPECT_GT(killed.sim_seconds, clean.sim_seconds)
      << "recovery must cost simulated time";

  const RecoveryReport& recovery = killed.report.recovery;
  EXPECT_EQ(recovery.nodes_killed, 1);
  EXPECT_GT(recovery.tasks_recomputed, 0)
      << "the dead node's completed map outputs were never re-executed";
  EXPECT_GT(recovery.re_replicated_bytes, 0u)
      << "the namenode never re-replicated the dead node's blocks";
  EXPECT_GT(recovery.recovery_seconds, 0.0);
  EXPECT_EQ(recovery.blocks_lost, 0);
  ASSERT_EQ(killed.report.chaos_events.size(), 1u);
  EXPECT_DOUBLE_EQ(killed.report.chaos_events[0].at, kill_at);

  // The clean report must carry an all-zero recovery section (stable schema).
  EXPECT_EQ(clean.report.recovery.nodes_killed, 0);
  EXPECT_EQ(clean.report.recovery.tasks_recomputed, 0);
  EXPECT_TRUE(clean.report.chaos_events.empty());
}

TEST(ChaosEndToEnd, SameSeedKillRunsAreBitIdentical) {
  const E2eRun clean = run_once({});
  ASSERT_TRUE(clean.completed) << clean.error;
  const double kill_at = pick_kill_time(clean);
  const std::vector<ChaosEvent> events = {
      {ChaosEventKind::kKillNode, kill_at, 2, 1.0}};
  const E2eRun a = run_once(events);
  const E2eRun b = run_once(events);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  EXPECT_EQ(a.report_json, b.report_json)
      << "same schedule, same seed, different report";
}

TEST(ChaosEndToEnd, LosingEveryReplicaFailsFast) {
  const E2eRun clean = run_once({});
  ASSERT_TRUE(clean.completed) << clean.error;
  const double kill_at = pick_kill_time(clean);
  const E2eRun lost = run_once(
      {{ChaosEventKind::kKillNode, kill_at, kNodes - 1, 1.0}},
      /*replication=*/1);
  EXPECT_FALSE(lost.completed)
      << "unreplicated blocks died with the node; the run cannot succeed";
  EXPECT_NE(lost.error.find("nrecoverable"), std::string::npos)
      << "failure must surface UnrecoverableBlock, got: " << lost.error;
}

}  // namespace
}  // namespace mri::core
