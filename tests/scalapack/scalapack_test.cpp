// The ScaLAPACK-style baseline: block-cyclic distribution arithmetic,
// distributed LU correctness, inversion correctness, and the Table 1/2
// transfer-scaling behaviour the Figure 8 comparison rests on.
#include <gtest/gtest.h>

#include "linalg/solve.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "scalapack/invert.hpp"
#include "scalapack/distribution.hpp"

namespace mri::scalapack {
namespace {

TEST(Distribution, OwnershipRoundRobin) {
  Distribution d(100, 16, 3);
  EXPECT_EQ(d.num_blocks(), 7);  // ceil(100/16)
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(4), 1);
  EXPECT_EQ(d.width(6), 4);  // last block is ragged
  EXPECT_EQ(d.blocks_of(1), (std::vector<Index>{1, 4}));
  EXPECT_EQ(d.column_owner(17), 1);
}

TEST(Distribution, ElementsSumToMatrix) {
  Distribution d(97, 8, 4);
  std::uint64_t total = 0;
  for (int r = 0; r < 4; ++r) total += d.elements_of(r);
  EXPECT_EQ(total, 97u * 97u);
}

CostModel quiet_model() {
  CostModel m = CostModel::ec2_medium();
  m.node_speed_variance = 0.0;
  return m;
}

class ScalapackSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScalapackSweep, InvertsCorrectly) {
  const int ranks = GetParam();
  Cluster cluster(ranks, quiet_model());
  const Matrix a = random_matrix(64, /*seed=*/ranks);
  Options opts;
  opts.block_width = 16;
  const InvertResult r = invert(a, cluster, opts);
  EXPECT_LT(inversion_residual(a, r.inverse), 1e-9);
  EXPECT_LT(max_abs_diff(r.inverse, invert_via_lu(a)), 1e-8);
  EXPECT_GT(r.report.sim_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ScalapackSweep, ::testing::Values(1, 2, 3, 4, 8));

TEST(Scalapack, RaggedBlocksAndPivoting) {
  Cluster cluster(3, quiet_model());
  const Matrix a = random_pivot_hostile(50, /*seed=*/5);
  Options opts;
  opts.block_width = 7;  // does not divide 50
  const InvertResult r = invert(a, cluster, opts);
  EXPECT_LT(inversion_residual(a, r.inverse), 1e-6);
}

TEST(Scalapack, SingularThrows) {
  Cluster cluster(2, quiet_model());
  Matrix a = random_matrix(16, /*seed=*/6);
  for (Index j = 0; j < 16; ++j) a(0, j) = 0.0;
  Options opts;
  opts.block_width = 8;
  EXPECT_THROW(invert(a, cluster, opts), NumericalError);
}

TEST(Scalapack, TransferGrowsWithRanks) {
  // Tables 1 and 2: ScaLAPACK's aggregate transfer is Θ(m0 · n²) — per-rank
  // volume does not shrink as the cluster grows. This is the structural
  // reason our algorithm wins at scale (Figure 8).
  const Matrix a = random_matrix(64, /*seed=*/7);
  Options opts;
  opts.block_width = 8;

  Cluster c2(2, quiet_model());
  Cluster c8(8, quiet_model());
  const auto r2 = invert(a, c2, opts);
  const auto r8 = invert(a, c8, opts);
  const double ratio =
      static_cast<double>(r8.report.io.bytes_transferred) /
      static_cast<double>(r2.report.io.bytes_transferred);
  // 4x the ranks -> roughly 4x the aggregate transfer (tree sends add a bit).
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 8.0);
}

TEST(Scalapack, SingleRankHasNoTransfer) {
  Cluster cluster(1, quiet_model());
  const Matrix a = random_matrix(32, /*seed=*/8);
  Options opts;
  opts.block_width = 8;
  const auto r = invert(a, cluster, opts);
  EXPECT_EQ(r.report.io.bytes_transferred, 0u);
  EXPECT_LT(inversion_residual(a, r.inverse), 1e-10);
}

TEST(Scalapack, FlopsMatchTheory) {
  // LU ≈ (2/3)n³ total flops (mults+adds), inversion ≈ (4/3)n³.
  const Index n = 96;
  Cluster cluster(4, quiet_model());
  const Matrix a = random_matrix(n, /*seed=*/9);
  Options opts;
  opts.block_width = 16;
  const auto r = invert(a, cluster, opts);
  const double cube = static_cast<double>(n) * n * n;
  const double flops = static_cast<double>(r.report.io.flops());
  EXPECT_GT(flops, 1.5 * cube);  // ~2/3 + ~4/3 = 2 n³, minus lower-order
  EXPECT_LT(flops, 2.6 * cube);
}

}  // namespace
}  // namespace mri::scalapack
