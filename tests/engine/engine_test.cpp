// Engine-layer tests (ISSUE 7): BlockCache eviction determinism, LineageGraph
// depth/wave planning, SpinEngine wired to a real Dfs (commit tracking, job-
// boundary spills, lineage recovery after a chaos node kill), the memory-tier
// IoStats accounting the engine relies on, and the satellite-1 regression
// that attempt timing and CostModel::memory_tier_seconds cannot drift apart.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dfs/dfs.hpp"
#include "engine/block_cache.hpp"
#include "engine/lineage.hpp"
#include "engine/spin_engine.hpp"
#include "mapreduce/scheduler.hpp"
#include "sim/chaos.hpp"
#include "sim/cost_model.hpp"
#include "sim/io_stats.hpp"

namespace mri {
namespace {

using engine::BlockCache;
using engine::LineageGraph;
using engine::LineageRecord;
using engine::SpinEngine;

// ---- BlockCache ------------------------------------------------------------

TEST(BlockCache, TouchCountsHitsOnlyWhenResident) {
  BlockCache cache(2, 0);
  cache.insert("/a", 0, 100, 1);
  EXPECT_TRUE(cache.resident("/a"));
  EXPECT_TRUE(cache.touch("/a", 2));
  EXPECT_FALSE(cache.touch("/missing", 2));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident_bytes, 100u);
}

TEST(BlockCache, EvictsLeastRecentEpochThenPathAscending) {
  BlockCache cache(1, 100);
  cache.insert("/b", 0, 60, 1);
  cache.insert("/a", 0, 60, 1);  // same epoch as /b: path breaks the tie
  cache.insert("/c", 0, 60, 2);
  // Node 0 holds 180 bytes against a 100-byte budget: evict /a then /b
  // (epoch 1 before epoch 2, ascending path within the epoch).
  const auto evicted = cache.collect_evictions();
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].path, "/a");
  EXPECT_EQ(evicted[1].path, "/b");
  EXPECT_FALSE(cache.resident("/a"));
  EXPECT_TRUE(cache.resident("/c"));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.resident_bytes(0), 60u);
}

TEST(BlockCache, TouchRefreshesRecency) {
  BlockCache cache(1, 100);
  cache.insert("/old", 0, 60, 1);
  cache.insert("/new", 0, 60, 2);
  cache.touch("/old", 3);  // now /new is the least recent
  const auto evicted = cache.collect_evictions();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].path, "/new");
  EXPECT_TRUE(cache.resident("/old"));
}

TEST(BlockCache, PinnedEntriesAreNeverEvicted) {
  BlockCache cache(1, 100);
  cache.insert("/pinned", 0, 60, 1);
  cache.insert("/plain", 0, 60, 2);
  cache.pin("/pinned");
  const auto evicted = cache.collect_evictions();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].path, "/plain");
  EXPECT_TRUE(cache.resident("/pinned"));
  // Unpinning makes it eligible again.
  cache.unpin("/pinned");
  cache.insert("/more", 0, 60, 3);
  const auto second = cache.collect_evictions();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].path, "/pinned");
}

TEST(BlockCache, EraseDropsEntryWithoutCountingEviction) {
  BlockCache cache(1, 0);
  cache.insert("/a", 0, 100, 1);
  cache.erase("/a");
  EXPECT_FALSE(cache.resident("/a"));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  cache.erase("/a");  // absent: no-op
}

TEST(BlockCache, UnlimitedCapacityNeverEvictsAndTracksPeak) {
  BlockCache cache(2, 0);
  cache.insert("/a", 0, 1'000'000, 1);
  cache.insert("/b", 1, 2'000'000, 1);
  EXPECT_TRUE(cache.collect_evictions().empty());
  EXPECT_EQ(cache.stats().peak_resident_bytes, 3'000'000u);
  cache.erase("/b");
  // The peak is a high-water mark; erasing doesn't lower it.
  EXPECT_EQ(cache.stats().peak_resident_bytes, 3'000'000u);
  EXPECT_EQ(cache.stats().resident_bytes, 1'000'000u);
}

// ---- LineageGraph ----------------------------------------------------------

LineageRecord record_with_inputs(std::vector<std::string> inputs,
                                 std::uint64_t size = 8) {
  LineageRecord rec;
  rec.producer_job = 1;
  rec.inputs = std::move(inputs);
  rec.size = size;
  return rec;
}

TEST(LineageGraph, DepthIsOnePlusMaxTrackedInputDepth) {
  LineageGraph graph;
  graph.record("/base", record_with_inputs({"/input/disk"}));
  graph.record("/mid", record_with_inputs({"/base", "/input/disk"}));
  graph.record("/top", record_with_inputs({"/mid", "/base"}));
  EXPECT_EQ(graph.get("/base").depth, 1);  // untracked inputs = base data
  EXPECT_EQ(graph.get("/mid").depth, 2);
  EXPECT_EQ(graph.get("/top").depth, 3);
  EXPECT_EQ(graph.size(), 3u);
}

TEST(LineageGraph, PlanWavesAscendingDepthDroppingUntracked) {
  LineageGraph graph;
  graph.record("/base/b", record_with_inputs({}));
  graph.record("/base/a", record_with_inputs({}));
  graph.record("/mid", record_with_inputs({"/base/a"}));
  graph.record("/top", record_with_inputs({"/mid"}));
  const auto waves = graph.plan_waves(
      {"/top", "/base/b", "/mid", "/base/a", "/disk/untracked"});
  ASSERT_EQ(waves.size(), 3u);
  EXPECT_EQ(waves[0], (std::vector<std::string>{"/base/a", "/base/b"}));
  EXPECT_EQ(waves[1], (std::vector<std::string>{"/mid"}));
  EXPECT_EQ(waves[2], (std::vector<std::string>{"/top"}));
}

TEST(LineageGraph, EraseAndMarkSpilled) {
  LineageGraph graph;
  graph.record("/a", record_with_inputs({}));
  EXPECT_TRUE(graph.get("/a").on_memory_tier);
  graph.mark_spilled("/a");
  EXPECT_FALSE(graph.get("/a").on_memory_tier);
  graph.erase("/a");
  EXPECT_FALSE(graph.tracked("/a"));
  EXPECT_THROW(graph.get("/a"), InvalidArgument);
}

// ---- Dfs memory-tier accounting (satellite: IoStats coverage) --------------

TEST(MemoryTierAccounting, MemoryWriteChargesOnlyMemoryBytes) {
  dfs::Dfs fs(4);
  IoStats io;
  {
    dfs::ScopedTransferLog task(1);
    auto w = fs.create("/mem/part", &io, false, dfs::StorageTier::kMemory);
    std::vector<double> payload(64, 1.5);
    w.write_doubles(payload);
    w.close();
  }
  EXPECT_EQ(io.bytes_written_memory, 64u * sizeof(double));
  EXPECT_EQ(io.bytes_written, 0u);
  EXPECT_EQ(io.bytes_replicated, 0u);
  EXPECT_EQ(io.bytes_transferred, 0u);
  EXPECT_EQ(fs.file_tier("/mem/part"), dfs::StorageTier::kMemory);
  // Single unreplicated copy on the writing task's node.
  const auto blocks = fs.file_blocks("/mem/part");
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(blocks[0].replicas.size(), 1u);
  EXPECT_EQ(blocks[0].replicas[0], 1);
}

TEST(MemoryTierAccounting, NodeLocalReadChargesMemoryBandwidthOnly) {
  dfs::Dfs fs(4);
  const std::vector<double> payload(32, 2.0);
  {
    dfs::ScopedTransferLog task(2);
    auto w = fs.create("/mem/part", nullptr, false, dfs::StorageTier::kMemory);
    w.write_doubles(payload);
    w.close();
  }
  IoStats local;
  {
    dfs::ScopedTransferLog task(2);  // same node: a cache hit
    EXPECT_EQ(fs.read_doubles("/mem/part", &local), payload);
  }
  EXPECT_EQ(local.bytes_read_memory, 32u * sizeof(double));
  EXPECT_EQ(local.bytes_read, 0u);
  EXPECT_EQ(local.bytes_transferred, 0u);

  IoStats remote;
  {
    dfs::ScopedTransferLog task(3);  // different node: pays the network fetch
    EXPECT_EQ(fs.read_doubles("/mem/part", &remote), payload);
  }
  EXPECT_EQ(remote.bytes_read_memory, 0u);
  EXPECT_EQ(remote.bytes_read, 32u * sizeof(double));
  EXPECT_EQ(remote.bytes_transferred, 32u * sizeof(double));
}

TEST(MemoryTierAccounting, SpillChargesSpilledBytesAndFlipsTier) {
  dfs::Dfs fs(4);
  {
    dfs::ScopedTransferLog task(0);
    auto w = fs.create("/mem/part", nullptr, false, dfs::StorageTier::kMemory);
    w.write_text("spill me to disk");
    w.close();
  }
  IoStats io;
  fs.spill_to_disk("/mem/part", &io);
  EXPECT_EQ(io.bytes_spilled, fs.file_size("/mem/part"));
  EXPECT_EQ(io.bytes_written, 0u);
  EXPECT_EQ(fs.file_tier("/mem/part"), dfs::StorageTier::kDisk);
  // Spilling a disk-tier file is a caller bug.
  EXPECT_THROW(fs.spill_to_disk("/mem/part"), InvalidArgument);
}

TEST(MemoryTierAccounting, SubtractionUnderflowChecksNewFields) {
  const auto underflows = [](auto set_field) {
    IoStats a, b;
    set_field(b);
    EXPECT_THROW(a -= b, InvalidArgument);
    IoStats c;
    set_field(c);
    c -= b;  // equal values subtract cleanly to zero
    EXPECT_EQ(c, IoStats{});
  };
  underflows([](IoStats& s) { s.bytes_written_memory = 1; });
  underflows([](IoStats& s) { s.bytes_read_memory = 1; });
  underflows([](IoStats& s) { s.bytes_spilled = 1; });
}

// ---- SpinEngine over a real Dfs --------------------------------------------

TEST(SpinEngine, MemoryCommitPopulatesCacheAndLineage) {
  dfs::Dfs fs(4);
  CostModel model;
  SpinEngine eng(&fs, nullptr, &model, nullptr, 0 /* unlimited */);
  eng.begin_job("produce");
  IoStats io;
  {
    dfs::ScopedTransferLog task(1);
    auto w = fs.create("/mem/out", &io, false, dfs::StorageTier::kMemory);
    w.write_text("partition payload");
    w.close();
  }
  auto stats = eng.stats();
  EXPECT_EQ(stats.cache.insertions, 1u);
  EXPECT_EQ(stats.tracked_partitions, 1u);
  ASSERT_EQ(stats.job_names.size(), 1u);
  EXPECT_EQ(stats.job_names[0], "produce");

  // A consumer open of the tracked partition counts a cache hit.
  eng.begin_job("consume");
  {
    dfs::ScopedTransferLog task(1);
    (void)fs.read_text("/mem/out");
  }
  EXPECT_GE(eng.stats().cache.hits, 1u);

  // Removing the file drops both the cache entry and the lineage record.
  fs.remove("/mem/out");
  stats = eng.stats();
  EXPECT_EQ(stats.cache.resident_bytes, 0u);
  EXPECT_EQ(stats.tracked_partitions, 0u);
}

TEST(SpinEngine, JobBoundaryEvictionSpillsToDiskAndChargesAdmitter) {
  dfs::Dfs fs(2);
  CostModel model;
  SpinEngine eng(&fs, nullptr, &model, nullptr, 64 /* bytes per node */);
  eng.begin_job("j1");
  {
    dfs::ScopedTransferLog task(0);
    auto w = fs.create("/mem/big", nullptr, false, dfs::StorageTier::kMemory);
    w.write_doubles(std::vector<double>(32, 1.0));  // 256 bytes > 64
    w.close();
  }
  // Eviction runs at the next job boundary, charged to the admitting job.
  const IoStats spill = eng.begin_job("j2");
  EXPECT_EQ(spill.bytes_spilled, 256u);
  EXPECT_EQ(fs.file_tier("/mem/big"), dfs::StorageTier::kDisk);
  const auto stats = eng.stats();
  EXPECT_EQ(stats.cache.evictions, 1u);
  EXPECT_EQ(stats.cache.spilled_bytes, 256u);
  ASSERT_EQ(stats.spills.size(), 1u);
  EXPECT_EQ(stats.spills[0].job_ordinal, 2u);
  EXPECT_EQ(stats.spills[0].path, "/mem/big");
  // The spilled file is still readable (now from disk) and stays lineage-
  // tracked with a disk restore tier.
  EXPECT_EQ(fs.read_doubles("/mem/big").size(), 32u);
  EXPECT_EQ(stats.tracked_partitions, 1u);
}

TEST(SpinEngine, NodeKillRebuildsLostPartitionsFromLineage) {
  dfs::Dfs fs(4);
  CostModel model;
  ChaosEngine chaos;
  fs.bind_chaos(&chaos, model.network_bandwidth);
  SpinEngine eng(&fs, &chaos, &model, nullptr, 0);

  const std::vector<double> payload(16, 3.25);
  eng.begin_job("produce");
  {
    dfs::ScopedTransferLog task(2);
    auto w = fs.create("/mem/lost", nullptr, false, dfs::StorageTier::kMemory);
    w.write_doubles(payload);
    w.close();
  }
  // A dependent partition on a surviving node: same kill, deeper wave only
  // if its own node dies — here it must NOT be recomputed.
  eng.begin_job("derive");
  {
    dfs::ScopedTransferLog task(1);
    (void)fs.read_doubles("/mem/lost");
    auto w = fs.create("/mem/kept", nullptr, false, dfs::StorageTier::kMemory);
    w.write_doubles(payload);
    w.close();
  }

  chaos.add_event({ChaosEventKind::kKillNode, 100.0, 2, 1.0});
  chaos.advance_to(200.0);

  const auto rec = chaos.stats();
  EXPECT_EQ(rec.nodes_killed, 1);
  EXPECT_EQ(rec.partitions_recomputed, 1);
  EXPECT_GE(rec.lineage_waves, 1);
  EXPECT_GT(rec.lineage_recompute_seconds, 0.0);
  EXPECT_EQ(rec.lineage_recomputed_bytes, 16u * sizeof(double));
  EXPECT_EQ(rec.blocks_lost, 1);  // the single memory replica died...

  // ...but the partition was rebuilt, not abandoned: readable, on the memory
  // tier, placed on a live node.
  EXPECT_EQ(fs.read_doubles("/mem/lost"), payload);
  EXPECT_EQ(fs.file_tier("/mem/lost"), dfs::StorageTier::kMemory);
  for (const auto& block : fs.file_blocks("/mem/lost")) {
    for (int replica : block.replicas) EXPECT_NE(replica, 2);
  }
  EXPECT_EQ(fs.read_doubles("/mem/kept"), payload);

  // Recovery occupies the cluster past the kill time; the engine surfaces
  // the stall point for the job runner.
  const auto stats = eng.stats();
  EXPECT_EQ(stats.partitions_recomputed, 1);
  ASSERT_EQ(stats.recomputes.size(), 1u);
  EXPECT_EQ(stats.recomputes[0].path, "/mem/lost");
  EXPECT_GE(stats.recomputes[0].at, 100.0);
  EXPECT_GT(eng.recovery_available_at(), 100.0);
}

// ---- satellite 1: one memory-tier conversion point -------------------------

IoStats mixed_io() {
  IoStats io;
  io.mults = 2'000'000'000;
  io.bytes_written = 30'000'000;
  io.bytes_read = 12'000'000;
  io.bytes_transferred = 12'000'000;
  io.bytes_written_memory = 50'000'000;
  io.bytes_read_memory = 40'000'000;
  io.bytes_spilled = 6'000'000;
  return io;
}

TEST(MemoryTierCharging, TaskSecondsDecomposesThroughTheOneHelper) {
  const CostModel model = CostModel::ec2_medium();
  const IoStats io = mixed_io();
  IoStats disk_only = io;
  disk_only.bytes_written_memory = 0;
  disk_only.bytes_read_memory = 0;
  disk_only.bytes_spilled = 0;
  // task_seconds must charge the memory tier exactly once, via
  // memory_tier_seconds — no second (drifting) conversion anywhere.
  EXPECT_DOUBLE_EQ(model.task_seconds(io),
                   model.task_seconds(disk_only) + model.memory_tier_seconds(io));
  EXPECT_DOUBLE_EQ(model.memory_tier_seconds(io),
                   (50'000'000.0 + 40'000'000.0) / model.memory_bandwidth +
                       6'000'000.0 / model.disk_bandwidth);
  EXPECT_EQ(model.memory_tier_seconds(disk_only), 0.0);
}

TEST(MemoryTierCharging, SchedulerAttemptTimingAgreesWithCostModel) {
  CostModel model;
  model.task_overhead_seconds = 0.25;
  model.node_speed_variance = 0.0;
  model.slots_per_node = 1;
  Cluster cluster(1, model);
  mr::Attempt a;
  a.io = mixed_io();
  const mr::PhaseSchedule s = mr::schedule_phase(cluster, {{a}});
  // The flat (non-racked) scheduler path must produce exactly the cost
  // model's task time for the same IoStats, memory tier included — the
  // regression satellite-1 exists to pin down.
  EXPECT_NEAR(s.duration, model.task_seconds(a.io), 1e-12);
  EXPECT_GT(model.memory_tier_seconds(a.io), 0.0);
}

}  // namespace
}  // namespace mri
