// Cross-system integration: the MapReduce pipeline, the ScaLAPACK-style
// baseline, and the three single-node methods must all produce the same
// inverse; the application workflows from the paper's introduction must
// work end-to-end on the MapReduce inverse.
#include <gtest/gtest.h>

#include <cmath>

#include "core/inverter.hpp"
#include "linalg/gauss_jordan.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "scalapack/invert.hpp"

namespace mri {
namespace {

struct Systems {
  explicit Systems(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4) {}

  Matrix invert_mapreduce(const Matrix& a, Index nb) {
    core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    core::InversionOptions opts;
    opts.nb = nb;
    return inverter.invert(a, opts).inverse;
  }

  Matrix invert_scalapack(const Matrix& a) {
    scalapack::Options opts;
    opts.block_width = 16;
    return scalapack::invert(a, cluster, opts).inverse;
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
};

TEST(SystemsAgreement, AllFiveImplementationsAgree) {
  Systems sys(4);
  const Matrix a = random_matrix(48, /*seed=*/21);
  const Matrix mr = sys.invert_mapreduce(a, 12);
  const Matrix sl = sys.invert_scalapack(a);
  const Matrix lu = invert_via_lu(a);
  const Matrix gj = gauss_jordan_invert(a);
  const Matrix qr = qr_invert(a);
  EXPECT_LT(max_abs_diff(mr, lu), 1e-8);
  EXPECT_LT(max_abs_diff(sl, lu), 1e-8);
  EXPECT_LT(max_abs_diff(gj, lu), 1e-8);
  EXPECT_LT(max_abs_diff(qr, lu), 1e-7);
}

TEST(SystemsAgreement, LinearSolverApplication) {
  // §1: solve Ax = b as x = A⁻¹ b.
  Systems sys(4);
  const Index n = 32;
  const Matrix a = random_diagonally_dominant(n, /*seed=*/22);
  const Matrix inv = sys.invert_mapreduce(a, 8);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) b[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
  // x = A⁻¹ b.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    double sum = 0.0;
    for (Index j = 0; j < n; ++j)
      sum += inv(i, j) * b[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum;
  }
  // Check Ax == b.
  for (Index i = 0; i < n; ++i) {
    double sum = 0.0;
    for (Index j = 0; j < n; ++j)
      sum += a(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(sum, b[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(SystemsAgreement, InverseIterationApplication) {
  // §1: inverse iteration finds the eigenvector for the eigenvalue nearest
  // mu using repeated multiplication by (A - mu I)⁻¹. Build a matrix with a
  // known well-separated spectrum: A = Q·diag(1..n)·Qᵀ.
  Systems sys(2);
  const Index n = 24;
  const QrResult qr = qr_decompose(random_matrix(n, /*seed=*/23));
  Matrix d(n, n);
  for (Index i = 0; i < n; ++i) d(i, i) = static_cast<double>(i + 1);
  const Matrix a = matmul(matmul(qr.q, d), transpose(qr.q));

  // Target the eigenvalue 1 (nearest to mu = 1.3; contraction ratio 0.43).
  const double mu = 1.3;
  Matrix shifted = a;
  for (Index i = 0; i < n; ++i) shifted(i, i) -= mu;
  const Matrix inv = sys.invert_mapreduce(shifted, 8);

  std::vector<double> v(static_cast<std::size_t>(n), 1.0);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<double> next(static_cast<std::size_t>(n), 0.0);
    for (Index i = 0; i < n; ++i) {
      double sum = 0.0;
      for (Index j = 0; j < n; ++j)
        sum += inv(i, j) * v[static_cast<std::size_t>(j)];
      next[static_cast<std::size_t>(i)] = sum;
    }
    double norm = 0.0;
    for (double x : next) norm += x * x;
    norm = std::sqrt(norm);
    for (double& x : next) x /= norm;
    v = std::move(next);
  }
  // Rayleigh quotient lambda = v^T A v / v^T v, then ||Av - lambda v|| small.
  std::vector<double> av(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    double sum = 0.0;
    for (Index j = 0; j < n; ++j)
      sum += a(i, j) * v[static_cast<std::size_t>(j)];
    av[static_cast<std::size_t>(i)] = sum;
  }
  double lambda = 0.0, vv = 0.0;
  for (Index i = 0; i < n; ++i) {
    lambda += v[static_cast<std::size_t>(i)] * av[static_cast<std::size_t>(i)];
    vv += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
  }
  lambda /= vv;
  double resid = 0.0;
  for (Index i = 0; i < n; ++i) {
    const double d =
        av[static_cast<std::size_t>(i)] - lambda * v[static_cast<std::size_t>(i)];
    resid += d * d;
  }
  EXPECT_LT(std::sqrt(resid), 1e-6);
}

TEST(SystemsAgreement, ReusableFilesystemAcrossRuns) {
  // Inverting twice in the same DFS must work (cleanup between runs).
  Systems sys(2);
  const Matrix a = random_matrix(24, /*seed=*/24);
  const Matrix first = sys.invert_mapreduce(a, 8);
  const Matrix b = random_matrix(24, /*seed=*/25);
  const Matrix second = sys.invert_mapreduce(b, 8);
  EXPECT_LT(inversion_residual(a, first), 1e-8);
  EXPECT_LT(inversion_residual(b, second), 1e-8);
}

TEST(SystemsAgreement, SimulatedTimeOrdering) {
  // Sanity of the cost model at tiny scale: more nodes must not make the
  // simulated time larger by more than launch-overhead noise, and the
  // pipeline must report plausible positive times.
  const Matrix a = random_matrix(64, /*seed=*/26);
  core::InversionOptions opts;
  opts.nb = 16;

  Systems one(1);
  Systems eight(8);
  core::MapReduceInverter inv1(&one.cluster, &one.fs, &one.pool);
  core::MapReduceInverter inv8(&eight.cluster, &eight.fs, &eight.pool);
  const auto r1 = inv1.invert(a, opts);
  const auto r8 = inv8.invert(a, opts);
  EXPECT_GT(r1.report.sim_seconds, 0.0);
  EXPECT_GT(r8.report.sim_seconds, 0.0);
  // The parallel phases must shrink: compare phase time excluding launch.
  const double launch = one.cluster.cost_model().job_launch_seconds;
  const double t1 = r1.report.sim_seconds - launch * r1.report.jobs;
  const double t8 = r8.report.sim_seconds - launch * r8.report.jobs;
  EXPECT_LT(t8, t1);
}

}  // namespace
}  // namespace mri
