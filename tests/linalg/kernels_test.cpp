// The kernel engine: cross-backend equivalence, GEMM modes, blocked TRSM
// against reference substitution, determinism, threading and counters.
#include "linalg/kernels/kernel.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri::kernels {
namespace {

Matrix gemm_reference(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index k = 0; k < a.cols(); ++k)
      for (Index j = 0; j < b.cols(); ++j) c(i, j) += a(i, k) * b(k, j);
  return c;
}

Matrix run_gemm(Backend backend, GemmMode mode, const Matrix& a,
                const Matrix& b, Matrix c) {
  KernelContext ctx;
  ctx.backend = backend;
  ctx.gemm(mode, a.rows(), b.cols(), a.cols(), a.data().data(), a.cols(),
           b.data().data(), b.cols(), c.data().data(), c.cols());
  return c;
}

Matrix run_gemm_bt(Backend backend, GemmMode mode, const Matrix& a,
                   const Matrix& bt, Matrix c) {
  KernelContext ctx;
  ctx.backend = backend;
  ctx.gemm_bt(mode, a.rows(), bt.rows(), a.cols(), a.data().data(), a.cols(),
              bt.data().data(), bt.cols(), c.data().data(), c.cols());
  return c;
}

const std::vector<Backend> kAllBackends = {Backend::kNaive, Backend::kTiled,
                                           Backend::kSimd, Backend::kThreaded};

TEST(KernelBackend, NamesRoundTrip) {
  for (const Backend b : kAllBackends) {
    Backend parsed;
    ASSERT_TRUE(parse_backend(backend_name(b), &parsed)) << backend_name(b);
    EXPECT_EQ(parsed, b);
  }
  Backend out = Backend::kNaive;
  EXPECT_FALSE(parse_backend("blas", &out));
  EXPECT_EQ(out, Backend::kNaive);  // untouched on failure
}

TEST(KernelBackend, AvailabilityAndDefault) {
  EXPECT_TRUE(backend_available(Backend::kNaive));
  EXPECT_TRUE(backend_available(Backend::kTiled));
  EXPECT_TRUE(backend_available(Backend::kThreaded));
  // kSimd may be unavailable off-x86; the default must always be runnable.
  EXPECT_TRUE(backend_available(default_backend()));
  const Backend saved = default_backend();
  set_default_backend(Backend::kTiled);
  EXPECT_EQ(default_backend(), Backend::kTiled);
  set_default_backend(saved);
}

// Non-tile-multiple shapes on purpose: 129 x 65 · 65 x 31 exercises every
// edge strip of the tiled and SIMD microkernels.
class GemmShapes
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index>> {};

TEST_P(GemmShapes, BackendsMatchReferenceWithinTolerance) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, /*seed=*/m + k, -1, 1);
  const Matrix b = random_matrix(k, n, /*seed=*/k + n + 7, -1, 1);
  const Matrix ref = gemm_reference(a, b);
  const double tol = 1e-12 * static_cast<double>(k + 1);
  for (const Backend backend : kAllBackends) {
    const Matrix c = run_gemm(backend, GemmMode::kAssign, a, b, Matrix(m, n));
    EXPECT_LT(max_abs_diff(c, ref), tol) << backend_name(backend);
  }
}

TEST_P(GemmShapes, TransposedBMatchesGemm) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, /*seed=*/m + k + 1, -1, 1);
  const Matrix b = random_matrix(k, n, /*seed=*/k + n + 8, -1, 1);
  const Matrix bt = transpose(b);
  const Matrix ref = gemm_reference(a, b);
  const double tol = 1e-12 * static_cast<double>(k + 1);
  for (const Backend backend : kAllBackends) {
    const Matrix c =
        run_gemm_bt(backend, GemmMode::kAssign, a, bt, Matrix(m, n));
    EXPECT_LT(max_abs_diff(c, ref), tol) << backend_name(backend);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple<Index, Index, Index>(1, 1, 1),
                      std::make_tuple<Index, Index, Index>(4, 8, 8),
                      std::make_tuple<Index, Index, Index>(3, 5, 2),
                      std::make_tuple<Index, Index, Index>(129, 65, 31),
                      std::make_tuple<Index, Index, Index>(64, 300, 17),
                      std::make_tuple<Index, Index, Index>(31, 1, 9),
                      std::make_tuple<Index, Index, Index>(97, 257, 33)));

TEST(Gemm, ModesCombineCorrectly) {
  const Matrix a = random_matrix(13, 17, 1, -1, 1);
  const Matrix b = random_matrix(17, 11, 2, -1, 1);
  const Matrix product = gemm_reference(a, b);
  const Matrix c0 = random_matrix(13, 11, 3, -1, 1);
  for (const Backend backend : kAllBackends) {
    const Matrix assigned = run_gemm(backend, GemmMode::kAssign, a, b, c0);
    const Matrix accumulated =
        run_gemm(backend, GemmMode::kAccumulate, a, b, c0);
    const Matrix subtracted = run_gemm(backend, GemmMode::kSubtract, a, b, c0);
    EXPECT_LT(max_abs_diff(assigned, product), 1e-10) << backend_name(backend);
    EXPECT_LT(max_abs_diff(accumulated, add(c0, product)), 1e-10)
        << backend_name(backend);
    EXPECT_LT(max_abs_diff(subtracted, subtract(c0, product)), 1e-10)
        << backend_name(backend);
  }
}

TEST(Gemm, AssignZerosCWhenKIsZero) {
  Matrix c = random_matrix(5, 4, 9, -1, 1);
  KernelContext ctx;
  ctx.gemm(GemmMode::kAssign, 5, 4, 0, nullptr, 1, nullptr, 1,
           c.data().data(), c.cols());
  EXPECT_EQ(max_abs(c), 0.0);
}

TEST(Gemm, EachBackendIsDeterministic) {
  const Matrix a = random_matrix(65, 129, 4, -1, 1);
  const Matrix b = random_matrix(129, 33, 5, -1, 1);
  for (const Backend backend : kAllBackends) {
    const Matrix first =
        run_gemm(backend, GemmMode::kAssign, a, b, Matrix(65, 33));
    const Matrix second =
        run_gemm(backend, GemmMode::kAssign, a, b, Matrix(65, 33));
    EXPECT_EQ(first, second) << backend_name(backend);  // bitwise
  }
}

TEST(Gemm, ThreadedMatchesSerialBitwise) {
  // kThreaded partitions rows over the serial backend with chunks aligned
  // to the microkernel's row group, so the arithmetic per row is identical.
  const Matrix a = random_matrix(67, 130, 6, -1, 1);
  const Matrix b = random_matrix(130, 29, 7, -1, 1);
  const Backend serial =
      backend_available(Backend::kSimd) ? Backend::kSimd : Backend::kTiled;
  const Matrix expected =
      run_gemm(serial, GemmMode::kAssign, a, b, Matrix(67, 29));
  KernelContext ctx;
  ctx.backend = Backend::kThreaded;
  for (const int threads : {1, 2, 3, 8}) {
    ctx.threads = threads;
    Matrix c(67, 29);
    ctx.gemm(GemmMode::kAssign, 67, 29, 130, a.data().data(), a.cols(),
             b.data().data(), b.cols(), c.data().data(), c.cols());
    EXPECT_EQ(c, expected) << threads << " threads";
  }
}

Matrix trsm_lower_reference(bool unit_diag, const Matrix& l, const Matrix& b) {
  Matrix x = b;
  for (Index i = 0; i < l.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) {
      double sum = x(i, j);
      for (Index p = 0; p < i; ++p) sum -= l(i, p) * x(p, j);
      x(i, j) = unit_diag ? sum : sum / l(i, i);
    }
  }
  return x;
}

class TrsmShapes
    : public ::testing::TestWithParam<std::tuple<Index, Index, bool>> {};

TEST_P(TrsmShapes, LowerLeftMatchesReference) {
  const auto [m, n, unit_diag] = GetParam();
  Matrix l = random_matrix(m, m, /*seed=*/m + n, -1, 1);
  for (Index i = 0; i < m; ++i) l(i, i) = 2.0 + static_cast<double>(i % 3);
  const Matrix b = random_matrix(m, n, /*seed=*/m + n + 5, -1, 1);
  const Matrix ref = trsm_lower_reference(unit_diag, l, b);
  const double tol = 1e-9 * static_cast<double>(m + 1);
  for (const Backend backend : kAllBackends) {
    Matrix x = b;
    KernelContext ctx;
    ctx.backend = backend;
    ctx.trsm_lower_left(unit_diag, m, n, l.data().data(), l.cols(),
                        x.data().data(), x.cols());
    EXPECT_LT(max_abs_diff(x, ref), tol) << backend_name(backend);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TrsmShapes,
    ::testing::Values(std::make_tuple<Index, Index, bool>(1, 1, false),
                      std::make_tuple<Index, Index, bool>(1, 7, true),
                      std::make_tuple<Index, Index, bool>(5, 3, false),
                      std::make_tuple<Index, Index, bool>(64, 64, true),
                      std::make_tuple<Index, Index, bool>(129, 31, false),
                      std::make_tuple<Index, Index, bool>(100, 1, true)));

TEST(Trsm, UpperRightFromTransposeSolves) {
  // X · U = B with ut = Uᵀ: check A·X reconstructs B for every backend, on
  // a blocked-path size (> one 64-wide diagonal block) and a tiny one.
  for (const Index n : {Index{3}, Index{100}}) {
    const Index m = n == 3 ? 2 : 37;
    Matrix ut = random_matrix(n, n, /*seed=*/n, -1, 1);
    for (Index i = 0; i < n; ++i) ut(i, i) = 3.0 + static_cast<double>(i % 4);
    const Matrix b = random_matrix(m, n, /*seed=*/n + 1, -1, 1);
    const Matrix u = transpose(ut);  // actual upper-triangular factor
    for (const Backend backend : kAllBackends) {
      Matrix x = b;
      KernelContext ctx;
      ctx.backend = backend;
      ctx.trsm_upper_right_from_transpose(m, n, ut.data().data(), ut.cols(),
                                          x.data().data(), x.cols());
      Matrix xu(m, n);
      // Only the upper triangle of u participates.
      for (Index i = 0; i < m; ++i)
        for (Index k = 0; k < n; ++k)
          for (Index j = k; j < n; ++j) xu(i, j) += x(i, k) * u(k, j);
      EXPECT_LT(max_abs_diff(xu, b), 1e-8 * static_cast<double>(n))
          << backend_name(backend) << " n=" << n;
    }
  }
}

TEST(KernelCounters, CountCallsAndFlops) {
  const Matrix a = random_matrix(8, 6, 1, -1, 1);
  const Matrix b = random_matrix(6, 10, 2, -1, 1);
  const KernelCounters before = counters_snapshot();
  run_gemm(Backend::kTiled, GemmMode::kAssign, a, b, Matrix(8, 10));
  Matrix l = random_matrix(5, 5, 3, -1, 1);
  for (Index i = 0; i < 5; ++i) l(i, i) = 2.0;
  Matrix x = random_matrix(5, 4, 4, -1, 1);
  KernelContext ctx;
  ctx.trsm_lower_left(false, 5, 4, l.data().data(), 5, x.data().data(), 4);
  const KernelCounters delta = counters_snapshot() - before;
  EXPECT_EQ(delta.gemm_calls, 1u);  // TRSM-internal GEMMs are not re-counted
  EXPECT_EQ(delta.trsm_calls, 1u);
  EXPECT_EQ(delta.flops, 2ull * 8 * 10 * 6 + 5ull * 5 * 4);
  EXPECT_GE(delta.seconds, 0.0);
}

TEST(KernelCost, BackendIndependentAndMatchesGemmAccounting) {
  const IoStats io = kernel_cost(default_backend(), 7, 9, 11);
  EXPECT_EQ(io.mults, 7ull * 9 * 11);
  EXPECT_EQ(io.adds, 7ull * 9 * 11);
  for (const Backend b : kAllBackends) {
    const IoStats other = kernel_cost(b, 7, 9, 11);
    EXPECT_EQ(other.mults, io.mults);
    EXPECT_EQ(other.adds, io.adds);
  }
}

}  // namespace
}  // namespace mri::kernels
