// The §2 method comparison: LU, Gauss-Jordan and QR inversion all agree;
// their pipeline-length properties match the paper's argument for LU.
#include <gtest/gtest.h>

#include "linalg/gauss_jordan.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"
#include "matrix/generate.hpp"
#include "matrix/layout.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

class MethodsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MethodsSweep, AllMethodsAgree) {
  const Matrix a = random_matrix(24, GetParam());
  const Matrix via_lu = invert_via_lu(a);
  const Matrix via_gj = gauss_jordan_invert(a);
  const Matrix via_qr = qr_invert(a);
  EXPECT_LT(max_abs_diff(via_lu, via_gj), 1e-8);
  EXPECT_LT(max_abs_diff(via_lu, via_qr), 1e-8);
  EXPECT_LT(inversion_residual(a, via_lu), 1e-10);
  EXPECT_LT(inversion_residual(a, via_gj), 1e-10);
  EXPECT_LT(inversion_residual(a, via_qr), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodsSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(GaussJordan, KnownInverse) {
  Matrix a(2, 2, {4, 7, 2, 6});
  const Matrix inv = gauss_jordan_invert(a);
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(GaussJordan, SingularThrows) {
  EXPECT_THROW(gauss_jordan_invert(Matrix(3, 3)), NumericalError);
}

TEST(GaussJordan, PivotHostile) {
  const Matrix a = random_pivot_hostile(24, /*seed=*/5);
  EXPECT_LT(inversion_residual(a, gauss_jordan_invert(a)), 1e-7);
}

TEST(Qr, DecompositionProperties) {
  const Matrix a = random_matrix(20, /*seed=*/6);
  const QrResult qr = qr_decompose(a);
  // A = QR.
  EXPECT_LT(max_abs_diff(matmul(qr.q, qr.r), a), 1e-10);
  // Q orthogonal.
  EXPECT_LT(max_abs_diff(matmul(qr.q, transpose(qr.q)), Matrix::identity(20)),
            1e-11);
  // R upper triangular.
  for (Index i = 1; i < 20; ++i)
    for (Index j = 0; j < i; ++j) EXPECT_EQ(qr.r(i, j), 0.0);
}

TEST(Qr, SingularThrows) {
  Matrix a(3, 3);       // zero matrix: R has zero diagonal
  EXPECT_THROW(qr_invert(a), NumericalError);
}

TEST(MethodChoice, PipelineLengths) {
  // §4.2: block LU needs ~n/nb jobs; Gauss-Jordan and QR need n.
  const Index n = 100000;
  const Index nb = 3200;
  EXPECT_EQ(gauss_jordan_pipeline_steps(n), n);
  EXPECT_EQ(qr_pipeline_steps(n), n);
  EXPECT_LE(total_job_count(n, nb), 34);  // the paper's 33-job pipeline
}

TEST(Solve, VectorSolveMatchesInverse) {
  const Matrix a = random_matrix(16, /*seed=*/7);
  std::vector<double> b(16);
  for (std::size_t i = 0; i < 16; ++i) b[i] = static_cast<double>(i) - 8.0;
  const std::vector<double> x = solve(a, b);
  // A x == b.
  for (Index i = 0; i < 16; ++i) {
    double sum = 0.0;
    for (Index j = 0; j < 16; ++j) sum += a(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(sum, b[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Solve, MatrixSolve) {
  const Matrix a = random_matrix(12, /*seed=*/8);
  const Matrix b = random_matrix(12, 3, /*seed=*/9, -1, 1);
  const Matrix x = solve_matrix(a, b);
  EXPECT_LT(max_abs_diff(matmul(a, x), b), 1e-9);
}

TEST(Solve, InverseViaLuSatisfiesBothSides) {
  const Matrix a = random_matrix(20, /*seed=*/10);
  const Matrix inv = invert_via_lu(a);
  EXPECT_LT(max_abs_diff(matmul(a, inv), Matrix::identity(20)), 1e-9);
  EXPECT_LT(max_abs_diff(matmul(inv, a), Matrix::identity(20)), 1e-9);
}

}  // namespace
}  // namespace mri
