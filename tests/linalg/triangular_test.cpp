// Eq. 4 triangular inversion and the Eq. 6 substitution solves.
#include "linalg/triangular.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

class TriangularSweep : public ::testing::TestWithParam<Index> {};

TEST_P(TriangularSweep, LowerInverse) {
  const Index n = GetParam();
  const Matrix l = random_unit_lower_triangular(n, /*seed=*/n);
  const Matrix inv = invert_lower(l);
  EXPECT_LT(max_abs_diff(matmul(l, inv), Matrix::identity(n)), 1e-9);
  EXPECT_LT(max_abs_diff(matmul(inv, l), Matrix::identity(n)), 1e-9);
}

TEST_P(TriangularSweep, UpperInverseBothWays) {
  const Index n = GetParam();
  const Matrix u = random_upper_triangular(n, /*seed=*/n + 1);
  const Matrix via_t = invert_upper_via_transpose(u);
  const Matrix direct = invert_upper_direct(u);
  EXPECT_LT(max_abs_diff(via_t, direct), 1e-9);
  EXPECT_LT(max_abs_diff(matmul(u, via_t), Matrix::identity(n)), 1e-8);
}

TEST_P(TriangularSweep, SolveLower) {
  const Index n = GetParam();
  const Matrix l = random_unit_lower_triangular(n, /*seed=*/n + 2);
  const Matrix b = random_matrix(n, 5, /*seed=*/n + 3, -1, 1);
  const Matrix x = solve_lower(l, b);
  EXPECT_LT(max_abs_diff(matmul(l, x), b), 1e-9);
}

TEST_P(TriangularSweep, SolveUpperRight) {
  const Index n = GetParam();
  const Matrix u = random_upper_triangular(n, /*seed=*/n + 4);
  const Matrix b = random_matrix(5, n, /*seed=*/n + 5, -1, 1);
  const Matrix x = solve_upper_right(u, b);
  EXPECT_LT(max_abs_diff(matmul(x, u), b), 1e-8);
  // Transposed-layout variant agrees.
  const Matrix xt = solve_upper_right_from_transpose(transpose(u), b);
  EXPECT_LT(max_abs_diff(x, xt), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TriangularSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33, 64));

TEST(Triangular, NonUnitLowerDiagonal) {
  Matrix l(2, 2, {2, 0, 3, 4});
  const Matrix inv = invert_lower(l);
  EXPECT_LT(max_abs_diff(matmul(l, inv), Matrix::identity(2)), 1e-15);
  EXPECT_DOUBLE_EQ(inv(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(inv(1, 1), 0.25);
}

TEST(Triangular, SingularDiagonalThrows) {
  Matrix l(2, 2, {1, 0, 3, 0});
  EXPECT_THROW(invert_lower(l), InvalidArgument);
  EXPECT_THROW(solve_lower(l, Matrix(2, 1)), InvalidArgument);
}

TEST(Triangular, ColumnSubsetMatchesFullInverse) {
  const Matrix l = random_unit_lower_triangular(24, /*seed=*/9);
  const Matrix full = invert_lower(l);
  // The §5.4 interleaved pattern: every 4th column starting at 1.
  std::vector<Index> ids;
  for (Index k = 1; k < 24; k += 4) ids.push_back(k);
  const Matrix cols = invert_lower_columns(l, ids);
  ASSERT_EQ(cols.cols(), static_cast<Index>(ids.size()));
  for (std::size_t c = 0; c < ids.size(); ++c) {
    for (Index i = 0; i < 24; ++i) {
      EXPECT_NEAR(cols(i, static_cast<Index>(c)), full(i, ids[c]), 1e-12);
    }
  }
}

TEST(Triangular, ColumnSubsetEmpty) {
  const Matrix l = random_unit_lower_triangular(4, /*seed=*/10);
  const Matrix cols = invert_lower_columns(l, {});
  EXPECT_EQ(cols.rows(), 4);
  EXPECT_EQ(cols.cols(), 0);
}

TEST(Triangular, ColumnSubsetOutOfRangeThrows) {
  const Matrix l = random_unit_lower_triangular(4, /*seed=*/11);
  EXPECT_THROW(invert_lower_columns(l, {4}), InvalidArgument);
}

TEST(Triangular, SolveShapeMismatchThrows) {
  const Matrix l = random_unit_lower_triangular(4, /*seed=*/12);
  EXPECT_THROW(solve_lower(l, Matrix(5, 2)), InvalidArgument);
  const Matrix u = random_upper_triangular(4, /*seed=*/13);
  EXPECT_THROW(solve_upper_right(u, Matrix(2, 5)), InvalidArgument);
}

TEST(Triangular, CostModels) {
  EXPECT_EQ(triangular_inverse_cost(60).mults, 60ull * 60 * 60 / 6);
  EXPECT_EQ(triangular_solve_cost(10, 4).mults, 10ull * 10 * 4 / 2);
}

}  // namespace
}  // namespace mri
