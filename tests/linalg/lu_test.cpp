// Algorithm 1 (single-node LU with partial pivoting): reconstruction,
// pivoting behaviour, singular detection, cost model.
#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

void expect_reconstructs(const Matrix& a, double tol) {
  const LuResult lu = lu_decompose(a);
  const Matrix pa = lu.perm.apply_to_rows(a);
  EXPECT_LT(max_abs_diff(matmul(lu.unit_lower(), lu.upper()), pa), tol);
}

TEST(Lu, KnownTwoByTwo) {
  // A = [[0, 1], [2, 3]] forces a pivot swap.
  Matrix a(2, 2, {0, 1, 2, 3});
  const LuResult lu = lu_decompose(a);
  EXPECT_EQ(lu.perm[0], 1);
  EXPECT_EQ(lu.perm[1], 0);
  expect_reconstructs(a, 1e-15);
}

TEST(Lu, ReconstructsRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    expect_reconstructs(random_matrix(40, seed), 1e-10);
  }
}

TEST(Lu, ReconstructsPivotHostile) {
  expect_reconstructs(random_pivot_hostile(40, /*seed=*/1), 1e-8);
}

TEST(Lu, ReconstructsDiagonallyDominant) {
  const Matrix a = random_diagonally_dominant(32, /*seed=*/2);
  const LuResult lu = lu_decompose(a);
  expect_reconstructs(a, 1e-11);
}

TEST(Lu, UnitLowerHasUnitDiagonal) {
  const LuResult lu = lu_decompose(random_matrix(16, /*seed=*/3));
  const Matrix l = lu.unit_lower();
  const Matrix u = lu.upper();
  for (Index i = 0; i < 16; ++i) {
    EXPECT_EQ(l(i, i), 1.0);
    for (Index j = i + 1; j < 16; ++j) EXPECT_EQ(l(i, j), 0.0);
    for (Index j = 0; j < i; ++j) EXPECT_EQ(u(i, j), 0.0);
  }
}

TEST(Lu, PivotingPicksLargestMagnitude) {
  // With pivoting, all |L| entries are <= 1.
  const LuResult lu = lu_decompose(random_matrix(32, /*seed=*/4));
  const Matrix l = lu.unit_lower();
  for (Index i = 0; i < 32; ++i)
    for (Index j = 0; j < i; ++j) EXPECT_LE(std::abs(l(i, j)), 1.0 + 1e-15);
}

TEST(Lu, SingularThrows) {
  Matrix a(3, 3, {1, 2, 3, 2, 4, 6, 1, 1, 1});  // row1 = 2*row0
  EXPECT_THROW(lu_decompose(a), NumericalError);
  EXPECT_THROW(lu_decompose(Matrix(4, 4)), NumericalError);  // zero matrix
}

TEST(Lu, NonSquareThrows) { EXPECT_THROW(lu_decompose(Matrix(3, 4)), InvalidArgument); }

TEST(Lu, OneByOne) {
  const LuResult lu = lu_decompose(Matrix(1, 1, {5.0}));
  EXPECT_EQ(lu.packed(0, 0), 5.0);
  EXPECT_TRUE(lu.perm.is_identity());
}

TEST(Lu, CostIsCubicOverThree) {
  const IoStats io = lu_cost(300);
  EXPECT_EQ(io.mults, 300ull * 300 * 300 / 3);
  EXPECT_EQ(io.adds, io.mults);
}

}  // namespace
}  // namespace mri
