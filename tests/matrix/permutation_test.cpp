#include "matrix/permutation.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

TEST(Permutation, IdentityByDefault) {
  Permutation p(4);
  EXPECT_TRUE(p.is_identity());
  const Matrix a = random_matrix(4, 4, 1, -1, 1);
  EXPECT_EQ(p.apply_to_rows(a), a);
  EXPECT_EQ(p.apply_to_columns(a), a);
}

TEST(Permutation, RejectsNonBijection) {
  EXPECT_THROW(Permutation(std::vector<Index>{0, 0, 1}), InvalidArgument);
  EXPECT_THROW(Permutation(std::vector<Index>{0, 3}), InvalidArgument);
}

TEST(Permutation, SwapMatchesPivoting) {
  Permutation p(3);
  p.swap(0, 2);
  EXPECT_EQ(p[0], 2);
  EXPECT_EQ(p[2], 0);
  EXPECT_EQ(p[1], 1);
}

TEST(Permutation, RowApplicationMatchesMatrixForm) {
  Permutation p(std::vector<Index>{2, 0, 3, 1});
  const Matrix a = random_matrix(4, 5, 2, -1, 1);
  EXPECT_LT(max_abs_diff(p.apply_to_rows(a), matmul(p.to_matrix(), a)),
            1e-15);
}

TEST(Permutation, ColumnApplicationMatchesMatrixForm) {
  Permutation p(std::vector<Index>{2, 0, 3, 1});
  const Matrix x = random_matrix(5, 4, 3, -1, 1);
  EXPECT_LT(max_abs_diff(p.apply_to_columns(x), matmul(x, p.to_matrix())),
            1e-15);
}

TEST(Permutation, InverseUndoesRows) {
  Permutation p(std::vector<Index>{1, 3, 0, 2});
  const Matrix a = random_matrix(4, 4, 4, -1, 1);
  EXPECT_EQ(p.inverse().apply_to_rows(p.apply_to_rows(a)), a);
  EXPECT_EQ(p.apply_inverse_to_rows(p.apply_to_rows(a)), a);
}

TEST(Permutation, ConcatIsBlockDiagonal) {
  Permutation s1(std::vector<Index>{1, 0});
  Permutation s2(std::vector<Index>{2, 0, 1});
  Permutation s = Permutation::concat(s1, s2);
  EXPECT_EQ(s.map(), (std::vector<Index>{1, 0, 4, 2, 3}));
  // Matches the block-diagonal matrix form.
  Matrix block(5, 5);
  block.set_block(0, 0, s1.to_matrix());
  block.set_block(2, 2, s2.to_matrix());
  EXPECT_EQ(s.to_matrix(), block);
}

TEST(Permutation, PermutationMatrixIsOrthogonal) {
  Permutation p(std::vector<Index>{3, 1, 4, 0, 2});
  const Matrix pm = p.to_matrix();
  EXPECT_LT(max_abs_diff(matmul(pm, transpose(pm)), Matrix::identity(5)),
            1e-15);
}

class PermutationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationProperty, RandomRoundTrips) {
  Xoshiro256 rng(GetParam());
  const Index n = 1 + static_cast<Index>(rng.next_below(20));
  Permutation p(n);
  for (Index i = 0; i < 2 * n; ++i) {
    p.swap(static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(n))),
           static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  const Matrix a = random_matrix(n, n, GetParam() + 7, -1, 1);
  // P^T P = I in both application forms.
  EXPECT_EQ(p.apply_inverse_to_rows(p.apply_to_rows(a)), a);
  EXPECT_EQ(p.inverse().inverse().map(), p.map());
  // apply_to_columns is the adjoint of apply_to_rows:
  // (X P)^T == P^T X^T.
  EXPECT_EQ(transpose(p.apply_to_columns(a)),
            p.inverse().apply_to_rows(transpose(a)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace mri
