// Tests of the closed-form partition geometry — including the exact values
// the paper reports (Table 3 job counts, §6.1 file counts, §6.2 factors).
#include "matrix/layout.hpp"

#include <gtest/gtest.h>

namespace mri {
namespace {

TEST(Layout, RecursionDepthBasics) {
  EXPECT_EQ(recursion_depth(8, 8), 0);
  EXPECT_EQ(recursion_depth(9, 8), 1);
  EXPECT_EQ(recursion_depth(16, 8), 1);
  EXPECT_EQ(recursion_depth(17, 8), 2);
  EXPECT_EQ(recursion_depth(1, 8), 0);
}

TEST(Layout, DepthMatchesPaperMatrices) {
  // Table 3 with nb = 3200.
  EXPECT_EQ(recursion_depth(20480, 3200), 3);   // M1
  EXPECT_EQ(recursion_depth(32768, 3200), 4);   // M2
  EXPECT_EQ(recursion_depth(40960, 3200), 4);   // M3
  EXPECT_EQ(recursion_depth(102400, 3200), 5);  // M4
  EXPECT_EQ(recursion_depth(16384, 3200), 3);   // M5
}

TEST(Layout, JobCountsMatchTable3) {
  EXPECT_EQ(total_job_count(20480, 3200), 9);    // M1
  EXPECT_EQ(total_job_count(32768, 3200), 17);   // M2
  EXPECT_EQ(total_job_count(40960, 3200), 17);   // M3
  EXPECT_EQ(total_job_count(102400, 3200), 33);  // M4
  EXPECT_EQ(total_job_count(16384, 3200), 9);    // M5
}

TEST(Layout, JobCountDecomposition) {
  // total = 1 partition + (2^d - 1) LU + 1 inversion.
  for (Index n : {100, 1000, 5000, 100000}) {
    const Index nb = 129;
    EXPECT_EQ(total_job_count(n, nb), lu_job_count(n, nb) + 2);
    EXPECT_EQ(lu_job_count(n, nb), leaf_count(n, nb) - 1);
  }
}

TEST(Layout, LeafSizeIsAtMostNb) {
  for (Index n = 1; n <= 300; n += 7) {
    for (Index nb : {1, 3, 8, 50}) {
      const int d = recursion_depth(n, nb);
      Index size = n;
      for (int i = 0; i < d; ++i) size = split_point(size);
      EXPECT_LE(size, nb) << "n=" << n << " nb=" << nb;
      if (d > 0) {
        // Depth is minimal: one fewer halving would exceed nb.
        Index bigger = n;
        for (int i = 0; i + 1 < d; ++i) bigger = split_point(bigger);
        EXPECT_GT(bigger, nb);
      }
    }
  }
}

TEST(Layout, IntermediateFileCountMatchesPaperExample) {
  // §6.1: n = 2^15, nb = 2048 (depth 4), m0 = 64 -> 496 files.
  EXPECT_EQ(recursion_depth(1 << 15, 2048), 4);
  EXPECT_EQ(intermediate_file_count(4, 64), 496);
}

TEST(Layout, BlockWrapFactorsOfPaperExamples) {
  // §6.2: 64 nodes -> 8 x 8.
  auto f64 = block_wrap_factors(64);
  EXPECT_EQ(f64.f1, 8);
  EXPECT_EQ(f64.f2, 8);
  auto f8 = block_wrap_factors(8);
  EXPECT_EQ(f8.f1, 4);
  EXPECT_EQ(f8.f2, 2);
  auto f12 = block_wrap_factors(12);
  EXPECT_EQ(f12.f1, 4);
  EXPECT_EQ(f12.f2, 3);
  auto f1 = block_wrap_factors(1);
  EXPECT_EQ(f1.f1, 1);
  EXPECT_EQ(f1.f2, 1);
  auto f7 = block_wrap_factors(7);  // prime: 7 x 1
  EXPECT_EQ(f7.f1, 7);
  EXPECT_EQ(f7.f2, 1);
}

TEST(Layout, BlockWrapInvariants) {
  for (int m0 = 1; m0 <= 256; ++m0) {
    const auto f = block_wrap_factors(m0);
    EXPECT_EQ(f.f1 * f.f2, m0);
    EXPECT_LE(f.f2, f.f1);
    EXPECT_LE(static_cast<double>(f.f2) * f.f2, static_cast<double>(m0));
  }
}

TEST(Layout, WrappedReadsBeatNaive) {
  // §6.2's example: 64 nodes, naive 65n² vs wrapped 16n².
  const Index n = 1000;
  EXPECT_EQ(naive_multiply_read_elements(n, 64), 65u * 1000u * 1000u);
  EXPECT_EQ(wrapped_multiply_read_elements(n, 64), 16u * 1000u * 1000u);
  for (int m0 : {2, 4, 8, 16, 32, 64, 128}) {
    EXPECT_LE(wrapped_multiply_read_elements(n, m0),
              naive_multiply_read_elements(n, m0));
  }
}

TEST(Layout, SplitPoint) {
  EXPECT_EQ(split_point(10), 5);
  EXPECT_EQ(split_point(11), 6);
  EXPECT_EQ(split_point(2), 1);
  EXPECT_THROW(split_point(1), InvalidArgument);
}

TEST(Layout, StripeCoversExactly) {
  for (Index rows : {0, 1, 5, 17, 100}) {
    for (int workers : {1, 2, 3, 7, 16}) {
      Index covered = 0;
      Index prev_end = 0;
      for (int w = 0; w < workers; ++w) {
        const RowRange r = stripe(rows, workers, w);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_GE(r.count(), 0);
        covered += r.count();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, rows);
      // Balanced to within one row.
      const RowRange first = stripe(rows, workers, 0);
      const RowRange last = stripe(rows, workers, workers - 1);
      EXPECT_LE(first.count() - last.count(), 1);
    }
  }
}

TEST(Layout, StripeRejectsBadWorker) {
  EXPECT_THROW(stripe(10, 2, 2), InvalidArgument);
  EXPECT_THROW(stripe(10, 0, 0), InvalidArgument);
}

}  // namespace
}  // namespace mri
