#include "matrix/dfs_io.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"

namespace mri {
namespace {

class DfsIoTest : public ::testing::Test {
 protected:
  MetricsRegistry metrics;
  dfs::Dfs fs{4, dfs::DfsConfig{}, &metrics};
};

TEST_F(DfsIoTest, BinaryRoundTrip) {
  const Matrix m = random_matrix(17, 9, /*seed=*/1, -10, 10);
  write_matrix(fs, "/m.bin", m);
  EXPECT_EQ(read_matrix(fs, "/m.bin"), m);
}

TEST_F(DfsIoTest, ShapeOnlyRead) {
  write_matrix(fs, "/m.bin", Matrix(5, 9));
  IoStats io;
  const MatrixShape s = read_matrix_shape(fs, "/m.bin", &io);
  EXPECT_EQ(s.rows, 5);
  EXPECT_EQ(s.cols, 9);
  EXPECT_EQ(io.bytes_read, 24u);  // header only
}

TEST_F(DfsIoTest, RowRangeRead) {
  const Matrix m = random_matrix(20, 6, /*seed=*/2, -1, 1);
  write_matrix(fs, "/m.bin", m);
  IoStats io;
  const Matrix rows = read_matrix_rows(fs, "/m.bin", 3, 11, &io);
  EXPECT_EQ(rows, m.block(3, 11, 0, 6));
  // Charged: header + 8 rows of 6 doubles (the seek is free).
  EXPECT_EQ(io.bytes_read, 24u + 8u * 6u * sizeof(double));
}

TEST_F(DfsIoTest, RowRangeBoundsChecked) {
  write_matrix(fs, "/m.bin", Matrix(4, 4));
  EXPECT_THROW(read_matrix_rows(fs, "/m.bin", 2, 5), InvalidArgument);
}

TEST_F(DfsIoTest, EmptyRowRange) {
  const Matrix m = random_matrix(4, 4, /*seed=*/3, -1, 1);
  write_matrix(fs, "/m.bin", m);
  const Matrix empty = read_matrix_rows(fs, "/m.bin", 2, 2);
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.cols(), 4);
}

TEST_F(DfsIoTest, RejectsCorruptMagic) {
  fs.write_text("/bad.bin", "this is not a matrix file at all............");
  EXPECT_THROW(read_matrix(fs, "/bad.bin"), Error);
}

TEST_F(DfsIoTest, TextRoundTrip) {
  const Matrix m = random_matrix(6, 6, /*seed=*/4, -1, 1);
  write_matrix_text(fs, "/m.txt", m);
  EXPECT_EQ(read_matrix_text(fs, "/m.txt"), m);
}

TEST_F(DfsIoTest, WriteChargesReplication) {
  IoStats io;
  write_matrix(fs, "/m.bin", Matrix(10, 10), &io);
  const std::uint64_t logical = 24u + 100u * sizeof(double);
  EXPECT_EQ(io.bytes_written, logical);
  EXPECT_EQ(io.bytes_replicated, 2 * logical);  // replication 3
}

}  // namespace
}  // namespace mri
