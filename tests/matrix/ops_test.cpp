#include "matrix/ops.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"

namespace mri {
namespace {

TEST(Ops, MatmulKnownValues) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = matmul(a, b);
  EXPECT_EQ(c, Matrix(2, 2, {58, 64, 139, 154}));
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), InvalidArgument);
  MatmulOptions bt;
  bt.transposed_b = true;
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(5, 4), bt), InvalidArgument);
}

TEST(Ops, MatmulByIdentity) {
  const Matrix a = random_matrix(17, 23, /*seed=*/1, -5, 5);
  EXPECT_LT(max_abs_diff(matmul(a, Matrix::identity(23)), a), 1e-12);
  EXPECT_LT(max_abs_diff(matmul(Matrix::identity(17), a), a), 1e-12);
}

class MultiplyVariants : public ::testing::TestWithParam<Index> {};

TEST_P(MultiplyVariants, AllBackendsAgree) {
  const Index n = GetParam();
  const Matrix a = random_matrix(n, n + 3, /*seed=*/n, -1, 1);
  const Matrix b = random_matrix(n + 3, n + 1, /*seed=*/n + 99, -1, 1);
  const Matrix fast = matmul(a, b);
  MatmulOptions naive_opts;
  naive_opts.backend = kernels::Backend::kNaive;
  const Matrix naive = matmul(a, b, naive_opts);
  MatmulOptions bt_opts;
  bt_opts.transposed_b = true;
  const Matrix via_t = matmul(a, transpose(b), bt_opts);
  EXPECT_LT(max_abs_diff(fast, naive), 1e-10 * static_cast<double>(n));
  EXPECT_LT(max_abs_diff(fast, via_t), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MultiplyVariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 64));

class MultiplyProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiplyProperties, Associativity) {
  const std::uint64_t seed = GetParam();
  const Matrix a = random_matrix(9, 7, seed, -1, 1);
  const Matrix b = random_matrix(7, 11, seed + 1, -1, 1);
  const Matrix c = random_matrix(11, 5, seed + 2, -1, 1);
  EXPECT_LT(max_abs_diff(matmul(matmul(a, b), c), matmul(a, matmul(b, c))),
            1e-11);
}

TEST_P(MultiplyProperties, TransposeOfProduct) {
  const std::uint64_t seed = GetParam();
  const Matrix a = random_matrix(8, 6, seed, -1, 1);
  const Matrix b = random_matrix(6, 10, seed + 5, -1, 1);
  // (AB)^T = B^T A^T
  EXPECT_LT(max_abs_diff(transpose(matmul(a, b)),
                         matmul(transpose(b), transpose(a))),
            1e-12);
}

TEST_P(MultiplyProperties, DistributesOverAddition) {
  const std::uint64_t seed = GetParam();
  const Matrix a = random_matrix(6, 6, seed, -1, 1);
  const Matrix b = random_matrix(6, 6, seed + 1, -1, 1);
  const Matrix c = random_matrix(6, 6, seed + 2, -1, 1);
  EXPECT_LT(max_abs_diff(matmul(a, add(b, c)),
                         add(matmul(a, b), matmul(a, c))),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiplyProperties,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Ops, MatmulIntoAccumulates) {
  const Matrix a = random_matrix(5, 5, 1, -1, 1);
  const Matrix b = random_matrix(5, 5, 2, -1, 1);
  Matrix c = random_matrix(5, 5, 3, -1, 1);
  const Matrix expected = add(c, matmul(a, b));
  matmul_into(a, b, &c);
  EXPECT_LT(max_abs_diff(c, expected), 1e-12);
}

TEST(Ops, MatmulIntoModes) {
  const Matrix a = random_matrix(4, 6, 11, -1, 1);
  const Matrix b = random_matrix(6, 3, 12, -1, 1);
  const Matrix product = matmul(a, b);
  Matrix c = random_matrix(4, 3, 13, -1, 1);
  const Matrix orig = c;
  matmul_into(a, b, &c, kernels::GemmMode::kAssign);
  EXPECT_LT(max_abs_diff(c, product), 1e-12);
  c = orig;
  matmul_into(a, b, &c, kernels::GemmMode::kSubtract);
  EXPECT_LT(max_abs_diff(c, subtract(orig, product)), 1e-12);
}

TEST(Ops, MatmulIntoShapeMismatchThrows) {
  const Matrix a = random_matrix(4, 6, 14, -1, 1);
  const Matrix b = random_matrix(6, 3, 15, -1, 1);
  Matrix wrong(3, 3);
  EXPECT_THROW(matmul_into(a, b, &wrong), InvalidArgument);
}

// The pre-kernel-engine free functions survive as deprecated inline
// wrappers; they must keep producing the same numbers as the matmul()
// entry point they forward to.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Ops, DeprecatedWrappersForwardToMatmul) {
  const Matrix a = random_matrix(7, 9, 21, -1, 1);
  const Matrix b = random_matrix(9, 5, 22, -1, 1);
  EXPECT_EQ(multiply(a, b), matmul(a, b));
  MatmulOptions naive_opts;
  naive_opts.backend = kernels::Backend::kNaive;
  EXPECT_EQ(multiply_naive_ijk(a, b), matmul(a, b, naive_opts));
  MatmulOptions bt_opts;
  bt_opts.transposed_b = true;
  const Matrix bt = transpose(b);
  EXPECT_EQ(multiply_transposed_b(a, bt), matmul(a, bt, bt_opts));
  Matrix c1 = random_matrix(7, 5, 23, -1, 1);
  Matrix c2 = c1;
  multiply_accumulate(a, b, &c1);
  matmul_into(a, b, &c2);
  EXPECT_EQ(c1, c2);
  const IoStats legacy = multiply_cost(3, 4, 5);
  const IoStats now = kernels::kernel_cost(kernels::Backend::kTiled, 3, 4, 5);
  EXPECT_EQ(legacy.mults, now.mults);
  EXPECT_EQ(legacy.adds, now.adds);
}
#pragma GCC diagnostic pop

TEST(Ops, AddSubtractRoundTrip) {
  const Matrix a = random_matrix(7, 9, 4, -1, 1);
  const Matrix b = random_matrix(7, 9, 5, -1, 1);
  EXPECT_LT(max_abs_diff(subtract(add(a, b), b), a), 1e-15);
}

TEST(Ops, SubtractInPlace) {
  Matrix a = random_matrix(4, 4, 6, -1, 1);
  const Matrix orig = a;
  const Matrix b = random_matrix(4, 4, 7, -1, 1);
  subtract_in_place(&a, b);
  EXPECT_LT(max_abs_diff(a, subtract(orig, b)), 1e-15);
}

TEST(Ops, TransposeIsInvolution) {
  const Matrix a = random_matrix(6, 11, 8, -1, 1);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Ops, MaxAbs) {
  Matrix m(2, 2, {1, -7, 3, 2});
  EXPECT_EQ(max_abs(m), 7.0);
  EXPECT_EQ(max_abs(Matrix(3, 3)), 0.0);
}

TEST(Ops, FrobeniusNorm) {
  Matrix m(2, 2, {3, 4, 0, 0});
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

TEST(Ops, InversionResidualOfExactInverse) {
  Matrix a(2, 2, {4, 7, 2, 6});
  Matrix inv(2, 2, {0.6, -0.7, -0.2, 0.4});
  EXPECT_LT(inversion_residual(a, inv), 1e-12);
}

TEST(Ops, InversionResidualDetectsWrongInverse) {
  Matrix a(2, 2, {4, 7, 2, 6});
  EXPECT_GT(inversion_residual(a, Matrix::identity(2)), 1.0);
}

TEST(Ops, KernelCostCountsFlops) {
  const IoStats io = kernels::kernel_cost(kernels::Backend::kNaive, 3, 4, 5);
  EXPECT_EQ(io.mults, 60u);
  EXPECT_EQ(io.adds, 60u);
  // Backend-independent by design: simulated accounting must not depend on
  // which kernel executed the flops.
  for (const kernels::Backend b :
       {kernels::Backend::kTiled, kernels::Backend::kSimd,
        kernels::Backend::kThreaded}) {
    const IoStats other = kernels::kernel_cost(b, 3, 4, 5);
    EXPECT_EQ(other.mults, io.mults);
    EXPECT_EQ(other.adds, io.adds);
  }
}

}  // namespace
}  // namespace mri
