#include "matrix/text_format.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

TEST(TextFormat, RoundTripsExactly) {
  const Matrix m = random_matrix(13, 7, /*seed=*/42, -1e6, 1e6);
  EXPECT_EQ(matrix_from_text(matrix_to_text(m)), m);
}

TEST(TextFormat, RoundTripsExtremeValues) {
  Matrix m(2, 3, {0.0, -0.0, 1e-300, -1e300, 3.141592653589793, 1.0 / 3.0});
  EXPECT_EQ(matrix_from_text(matrix_to_text(m)), m);
}

TEST(TextFormat, ParsesSimpleInput) {
  const Matrix m = matrix_from_text("1 2 3\n4 5 6\n");
  EXPECT_EQ(m, Matrix(2, 3, {1, 2, 3, 4, 5, 6}));
}

TEST(TextFormat, IgnoresBlankLinesAndWhitespace) {
  const Matrix m = matrix_from_text("\n  1\t2  \n\n3 4\r\n\n");
  EXPECT_EQ(m, Matrix(2, 2, {1, 2, 3, 4}));
}

TEST(TextFormat, EmptyTextIsEmptyMatrix) {
  EXPECT_TRUE(matrix_from_text("").empty());
  EXPECT_TRUE(matrix_from_text("\n\n").empty());
}

TEST(TextFormat, RaggedRowsThrow) {
  EXPECT_THROW(matrix_from_text("1 2\n3\n"), InvalidArgument);
}

TEST(TextFormat, GarbageThrows) {
  EXPECT_THROW(matrix_from_text("1 banana\n"), InvalidArgument);
}

TEST(TextFormat, ScientificNotation) {
  const Matrix m = matrix_from_text("1e3 -2.5E-2\n");
  EXPECT_EQ(m(0, 0), 1000.0);
  EXPECT_EQ(m(0, 1), -0.025);
}

}  // namespace
}  // namespace mri
