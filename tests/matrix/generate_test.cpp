#include "matrix/generate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

TEST(Generate, Deterministic) {
  EXPECT_EQ(random_matrix(16, 1), random_matrix(16, 1));
  EXPECT_NE(random_matrix(16, 1), random_matrix(16, 2));
}

TEST(Generate, RespectsRange) {
  const Matrix m = random_matrix(20, 20, /*seed=*/3, 2.0, 5.0);
  for (double v : m.data()) {
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Generate, DiagonallyDominant) {
  const Matrix m = random_diagonally_dominant(24, /*seed=*/4);
  for (Index i = 0; i < m.rows(); ++i) {
    double off = 0.0;
    for (Index j = 0; j < m.cols(); ++j)
      if (j != i) off += std::abs(m(i, j));
    EXPECT_GT(std::abs(m(i, i)), off);
  }
}

TEST(Generate, SpdIsSymmetric) {
  const Matrix m = random_spd(16, /*seed=*/5);
  EXPECT_LT(max_abs_diff(m, transpose(m)), 1e-12);
  // Strictly positive diagonal (necessary for PD).
  for (Index i = 0; i < m.rows(); ++i) EXPECT_GT(m(i, i), 0.0);
}

TEST(Generate, PivotHostileActuallyPivots) {
  const Matrix m = random_pivot_hostile(32, /*seed=*/6);
  const LuResult lu = lu_decompose(m);
  EXPECT_FALSE(lu.perm.is_identity());
}

TEST(Generate, UnitLowerTriangular) {
  const Matrix m = random_unit_lower_triangular(12, /*seed=*/7);
  for (Index i = 0; i < 12; ++i) {
    EXPECT_EQ(m(i, i), 1.0);
    for (Index j = i + 1; j < 12; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Generate, UpperTriangularInvertible) {
  const Matrix m = random_upper_triangular(12, /*seed=*/8);
  for (Index i = 0; i < 12; ++i) {
    EXPECT_GE(std::abs(m(i, i)), 0.5);
    for (Index j = 0; j < i; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

}  // namespace
}  // namespace mri
