#include "matrix/matrix.hpp"

#include <gtest/gtest.h>

namespace mri {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, AdoptsData) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 0), 3);
  EXPECT_EQ(m(1, 1), 4);
}

TEST(Matrix, AdoptRejectsWrongSize) {
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), InvalidArgument);
}

TEST(Matrix, Identity) {
  const Matrix i3 = Matrix::identity(3);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j) EXPECT_EQ(i3(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, CheckedAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, -1), InvalidArgument);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanWrites) {
  Matrix m(2, 3);
  auto r1 = m.row(1);
  r1[2] = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
}

TEST(Matrix, BlockExtractsCopy) {
  Matrix m(4, 4);
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 4; ++j) m(i, j) = static_cast<double>(10 * i + j);
  Matrix b = m.block(1, 3, 2, 4);
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_EQ(b(0, 0), 12.0);
  EXPECT_EQ(b(1, 1), 23.0);
  b(0, 0) = -1;  // copy: original unchanged
  EXPECT_EQ(m(1, 2), 12.0);
}

TEST(Matrix, BlockBoundsChecked) {
  Matrix m(4, 4);
  EXPECT_THROW(m.block(0, 5, 0, 4), InvalidArgument);
  EXPECT_THROW(m.block(2, 1, 0, 4), InvalidArgument);
}

TEST(Matrix, SetBlockRoundTrip) {
  Matrix m(4, 4);
  Matrix b(2, 2, {1, 2, 3, 4});
  m.set_block(1, 2, b);
  EXPECT_EQ(m.block(1, 3, 2, 4), b);
}

TEST(Matrix, SetBlockBoundsChecked) {
  Matrix m(4, 4);
  Matrix b(2, 2);
  EXPECT_THROW(m.set_block(3, 3, b), InvalidArgument);
}

TEST(Matrix, EmptyBlockAllowed) {
  Matrix m(4, 4);
  Matrix b = m.block(2, 2, 0, 4);
  EXPECT_EQ(b.rows(), 0);
  EXPECT_EQ(b.cols(), 4);
}

TEST(Matrix, EqualityIsValueBased) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {1, 2, 3, 4});
  Matrix c(2, 2, {1, 2, 3, 5});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace mri
