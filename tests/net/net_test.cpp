// Topology geometry and flow-level max-min fair simulation.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "net/flow_sim.hpp"
#include "net/topology.hpp"

namespace mri::net {
namespace {

constexpr double kBw = 100e6;  // 100 MB/s access links

TopologyOptions racked(int racks, double oversub = 1.0) {
  TopologyOptions o;
  o.kind = TopologyKind::kRacked;
  o.racks = racks;
  o.oversubscription = oversub;
  return o;
}

// ---- topology ---------------------------------------------------------------

TEST(Topology, FlatHasNoLinks) {
  const Topology t(8, kBw);
  EXPECT_FALSE(t.racked());
  EXPECT_EQ(t.num_links(), 0);
  EXPECT_EQ(t.racks(), 1);
  EXPECT_EQ(t.rack_of(0), 0);
  EXPECT_EQ(t.rack_of(7), 0);
}

TEST(Topology, RackAssignmentIsContiguousAndBalanced) {
  const Topology t(8, kBw, racked(4));
  // 8 hosts over 4 racks: 2 per rack, contiguous.
  for (int h = 0; h < 8; ++h) EXPECT_EQ(t.rack_of(h), h / 2);

  // Uneven split: rack sizes differ by at most one and stay contiguous.
  const Topology u(7, kBw, racked(3));
  std::vector<int> count(3, 0);
  int prev = 0;
  for (int h = 0; h < 7; ++h) {
    const int r = u.rack_of(h);
    EXPECT_GE(r, prev);  // monotone => contiguous
    prev = r;
    ++count[r];
  }
  for (int r = 0; r < 3; ++r) {
    EXPECT_GE(count[r], 2);
    EXPECT_LE(count[r], 3);
  }
}

TEST(Topology, LinkLayoutCapacitiesAndNames) {
  const Topology t(8, kBw, racked(4, /*oversub=*/4.0));
  ASSERT_EQ(t.num_links(), 2 * 8 + 2 * 4);
  // Host access links at host bandwidth, both directions.
  for (int h = 0; h < 16; ++h) EXPECT_EQ(t.link_capacity(h), kBw);
  // Rack uplinks: 2 hosts/rack * 100 MB/s / 4:1 oversub = 50 MB/s.
  for (int l = 16; l < 24; ++l) EXPECT_EQ(t.link_capacity(l), kBw / 2.0);
  EXPECT_EQ(t.link_name(0), "host0:up");
  EXPECT_EQ(t.link_name(8), "host0:down");
  EXPECT_EQ(t.link_name(16), "rack0:up");
  EXPECT_EQ(t.link_name(20), "rack0:down");
  EXPECT_EQ(t.link_name(23), "rack3:down");
}

TEST(Topology, PathsByDistance) {
  const Topology t(8, kBw, racked(4));
  // Node-local: no links.
  EXPECT_TRUE(t.path(3, 3).empty());
  // Same rack (hosts 0 and 1 share rack 0): src up, dst down.
  EXPECT_EQ(t.path(0, 1), (std::vector<int>{0, 8 + 1}));
  // Cross rack (host 0 in rack 0 -> host 7 in rack 3): src up, rack 0
  // uplink, rack 3 downlink, dst down.
  EXPECT_EQ(t.path(0, 7), (std::vector<int>{0, 16 + 0, 20 + 3, 8 + 7}));
}

TEST(Topology, RejectsBadArguments) {
  EXPECT_THROW(Topology(0, kBw), InvalidArgument);
  EXPECT_THROW(Topology(4, kBw, racked(5)), InvalidArgument);
  EXPECT_THROW(Topology(4, kBw, racked(2, 0.0)), InvalidArgument);
  EXPECT_THROW(Topology(4, 0.0, racked(2)), InvalidArgument);
  const Topology flat(4, kBw);
  EXPECT_THROW(flat.path(0, 1), InvalidArgument);
  EXPECT_THROW(flat.link_capacity(0), InvalidArgument);
}

// ---- flow simulation --------------------------------------------------------

TEST(FlowSim, SingleFlowRunsAtAccessLinkRate) {
  const Topology t(8, kBw, racked(4));
  // 100 MB across a non-blocking fabric: bottleneck is the access link.
  const FlowSimResult r = simulate_flows(t, {{0, 7, 100'000'000, 0.0}});
  ASSERT_EQ(r.finish.size(), 1u);
  EXPECT_NEAR(r.finish[0], 1.0, 1e-9);
  EXPECT_NEAR(r.end_time, 1.0, 1e-9);
  // Every link on the path saw the bytes and full utilization.
  for (int l : t.path(0, 7)) {
    EXPECT_EQ(r.links[static_cast<std::size_t>(l)].bytes, 100'000'000u);
    EXPECT_NEAR(r.links[static_cast<std::size_t>(l)].busy_seconds, 1.0, 1e-9);
  }
  EXPECT_NEAR(r.links[0].peak_utilization, 1.0, 1e-9);
  // Rack 0's uplink has capacity 2 * kBw, so one flow fills half of it.
  EXPECT_NEAR(r.links[16].peak_utilization, 0.5, 1e-9);
}

TEST(FlowSim, TwoFlowsShareACommonLinkFairly) {
  const Topology t(8, kBw, racked(4));
  // Both flows end at host 7: its receive link is the bottleneck, each flow
  // gets kBw / 2, so 100 MB takes 2 s.
  const FlowSimResult r = simulate_flows(
      t, {{0, 7, 100'000'000, 0.0}, {2, 7, 100'000'000, 0.0}});
  EXPECT_NEAR(r.finish[0], 2.0, 1e-9);
  EXPECT_NEAR(r.finish[1], 2.0, 1e-9);
  // Disjoint-destination flows don't contend anywhere.
  const FlowSimResult d = simulate_flows(
      t, {{0, 6, 100'000'000, 0.0}, {2, 7, 100'000'000, 0.0}});
  EXPECT_NEAR(d.finish[0], 1.0, 1e-9);
  EXPECT_NEAR(d.finish[1], 1.0, 1e-9);
}

TEST(FlowSim, OversubscribedUplinkIsTheBottleneck) {
  // 4:1 oversubscription: rack uplink = 2 hosts * kBw / 4 = kBw / 2. A
  // single cross-rack flow is capped there -> 2 s for 100 MB.
  const Topology t(8, kBw, racked(4, /*oversub=*/4.0));
  const FlowSimResult r = simulate_flows(t, {{0, 7, 100'000'000, 0.0}});
  EXPECT_NEAR(r.finish[0], 2.0, 1e-9);
  EXPECT_NEAR(r.links[16].peak_utilization, 1.0, 1e-9);
  // Same-rack traffic never touches the uplink and is unaffected.
  const FlowSimResult s = simulate_flows(t, {{0, 1, 100'000'000, 0.0}});
  EXPECT_NEAR(s.finish[0], 1.0, 1e-9);
}

TEST(FlowSim, StaggeredArrivalReallocatesRates) {
  const Topology t(8, kBw, racked(4));
  // Flow A (0 -> 7) runs alone for 0.5 s (50 MB done), then shares host 7's
  // receive link with flow B: A's remaining 50 MB at kBw/2 finishes at 1.5 s;
  // B then takes the full link for its last 50 MB -> 2.0 s.
  const FlowSimResult r = simulate_flows(
      t, {{0, 7, 100'000'000, 0.0}, {2, 7, 100'000'000, 0.5}});
  EXPECT_NEAR(r.finish[0], 1.5, 1e-9);
  EXPECT_NEAR(r.finish[1], 2.0, 1e-9);
}

TEST(FlowSim, TrivialFlowsFinishAtTheirStart) {
  const Topology t(4, kBw, racked(2));
  const FlowSimResult r = simulate_flows(
      t, {{1, 1, 100'000'000, 0.25}, {0, 3, 0, 0.75}});
  EXPECT_EQ(r.finish[0], 0.25);
  EXPECT_EQ(r.finish[1], 0.75);
  EXPECT_EQ(r.end_time, 0.75);
  for (const LinkLoad& l : r.links) EXPECT_EQ(l.bytes, 0u);
}

TEST(FlowSim, DeterministicAcrossRuns) {
  const Topology t(16, kBw, racked(4, /*oversub=*/8.0));
  std::vector<Flow> flows;
  for (int i = 0; i < 48; ++i) {
    Flow f;
    f.src = i % 16;
    f.dst = (i * 7 + 3) % 16;
    f.bytes = 1'000'000ull * static_cast<std::uint64_t>(1 + i % 5);
    f.start = 0.01 * static_cast<double>(i % 7);
    flows.push_back(f);
  }
  const FlowSimResult a = simulate_flows(t, flows);
  const FlowSimResult b = simulate_flows(t, flows);
  ASSERT_EQ(a.finish.size(), b.finish.size());
  for (std::size_t i = 0; i < a.finish.size(); ++i) {
    EXPECT_EQ(a.finish[i], b.finish[i]);  // bit-identical
  }
  EXPECT_EQ(a.end_time, b.end_time);
  for (std::size_t l = 0; l < a.links.size(); ++l) {
    EXPECT_EQ(a.links[l].bytes, b.links[l].bytes);
    EXPECT_EQ(a.links[l].busy_seconds, b.links[l].busy_seconds);
    EXPECT_EQ(a.links[l].peak_utilization, b.links[l].peak_utilization);
  }
}

TEST(FlowSim, ConservesBytesPerLink) {
  const Topology t(8, kBw, racked(4, /*oversub=*/2.0));
  const std::vector<Flow> flows = {
      {0, 1, 10'000'000, 0.0},   // same rack
      {0, 7, 20'000'000, 0.0},   // cross rack
      {6, 7, 30'000'000, 0.1},   // same rack (6 and 7 share rack 3)
  };
  const FlowSimResult r = simulate_flows(t, flows);
  // host0:up carries both of host 0's flows; host7:down both arrivals at 7.
  EXPECT_EQ(r.links[0].bytes, 30'000'000u);
  EXPECT_EQ(r.links[8 + 7].bytes, 50'000'000u);
  // Only the cross-rack flow touches rack uplinks.
  EXPECT_EQ(r.links[16].bytes, 20'000'000u);
  EXPECT_EQ(r.links[20 + 3].bytes, 20'000'000u);
}

TEST(FlowSim, RequiresRackedTopology) {
  const Topology flat(4, kBw);
  EXPECT_THROW(simulate_flows(flat, {{0, 1, 1, 0.0}}), InvalidArgument);
}

}  // namespace
}  // namespace mri::net
