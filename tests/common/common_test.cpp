#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace mri {
namespace {

// ---- random ---------------------------------------------------------------

TEST(Random, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Random, DoubleInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Random, UniformRange) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Random, NextBelowIsBoundedAndCoversAll) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Random, RoughlyUniformMean) {
  Xoshiro256 rng(4);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

// ---- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("task 5");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroThreadsRejected) { EXPECT_THROW(ThreadPool(0), InvalidArgument); }

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A parallel_for issued from inside a worker used to deadlock: every
  // worker blocks on futures only workers could run. More outer tasks than
  // threads guarantees the old deadlock; now inner loops run inline.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(pool.in_worker_thread());
    pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
  EXPECT_FALSE(pool.in_worker_thread());
}

// ---- cli --------------------------------------------------------------------

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog",      "pos1",    "--nodes", "8",
                        "--name=fig6", "--ratio", "2.5",     "--verbose"};
  CliOptions cli(8, argv);
  EXPECT_EQ(cli.get_int("nodes", 0), 8);
  EXPECT_EQ(cli.get_string("name", ""), "fig6");
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  CliOptions cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", -3), -3);
  EXPECT_EQ(cli.get_string("missing", "d"), "d");
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--nodes", "1,2,4,8"};
  CliOptions cli(3, argv);
  EXPECT_EQ(cli.get_int_list("nodes", {}),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(Cli, BadValuesThrow) {
  const char* argv[] = {"prog", "--n", "abc"};
  CliOptions cli(3, argv);
  EXPECT_THROW(cli.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(cli.get_bool("n", false), InvalidArgument);
}

// ---- units ------------------------------------------------------------------

TEST(Units, FormatGb) {
  EXPECT_EQ(format_gb(8ull * 1000 * 1000 * 1000), "8.00 GB");
  EXPECT_EQ(format_gb(200ull * 1000 * 1000 * 1000), "200 GB");
}

TEST(Units, FormatBytesScales) {
  EXPECT_EQ(format_bytes(500), "500 B");
  EXPECT_EQ(format_bytes(1500), "1.50 KB");
  EXPECT_EQ(format_bytes(20ull * 1000 * 1000 * 1000 * 1000), "20.0 TB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(42.0), "42.0 s");
  EXPECT_EQ(format_duration(300.0), "5.00 min");
  EXPECT_EQ(format_duration(5.0 * 3600), "5.00 h");
}

TEST(Units, FormatBillions) {
  EXPECT_EQ(format_billions(1070000000ull), "1.07 billion");
}

// ---- table ------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell_int(-42), "-42");
}

// ---- stopwatch ----------------------------------------------------------------

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace mri
