// The multi-tenant inversion service: fair sharing under saturation,
// reproducibility, admission shedding, work-conserving borrowing, priority
// ordering and the request-trace parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "service/loadgen.hpp"
#include "service/service.hpp"
#include "sim/run_report.hpp"

namespace mri::service {
namespace {

// Small but real inversions: order 24 with nb 8 gives a depth-2 plan on a
// 4-node cluster, fast enough to run dozens per test.
constexpr Index kOrder = 24;
constexpr Index kNb = 8;

struct ServiceFixture {
  explicit ServiceFixture(int nodes = 4)
      : cluster(nodes, CostModel::ec2_medium().scaled_down(40.0)),
        fs(nodes, dfs::DfsConfig{}, &metrics),
        pool(4) {}

  ServiceOptions options(std::vector<mr::TenantShare> shares,
                         int max_concurrent = 2, int queue_depth = 16) {
    ServiceOptions o;
    o.shares = std::move(shares);
    o.max_concurrent = max_concurrent;
    o.admission.max_queue_depth = queue_depth;
    o.inversion.nb = kNb;
    o.inversion.work_dir = "/svc";
    return o;
  }

  ServiceResult run(const ServiceOptions& o,
                    std::vector<InversionRequest> requests) {
    InversionService svc(&cluster, &fs, &pool, o, nullptr, &metrics);
    return svc.run(std::move(requests));
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
};

InversionRequest request(std::string tenant, double arrival,
                         std::uint64_t seed, int priority = 0) {
  InversionRequest r;
  r.tenant = std::move(tenant);
  r.order = kOrder;
  r.seed = seed;
  r.priority = priority;
  r.arrival_seconds = arrival;
  return r;
}

std::vector<InversionRequest> burst(int per_tenant) {
  std::vector<InversionRequest> requests;
  for (int i = 0; i < per_tenant; ++i) {
    requests.push_back(request("alice", 0.0, 100 + static_cast<std::uint64_t>(i)));
    requests.push_back(request("bob", 0.0, 200 + static_cast<std::uint64_t>(i)));
  }
  return requests;
}

const TenantReport& tenant_of(const RunReport& report,
                              const std::string& name) {
  for (const TenantReport& t : report.tenants) {
    if (t.tenant == name) return t;
  }
  ADD_FAILURE() << "tenant '" << name << "' missing from report";
  static TenantReport empty;
  return empty;
}

// ---- fair sharing -----------------------------------------------------------

TEST(InversionService, EqualWeightTenantsSplitSlotSecondsUnderSaturation) {
  ServiceFixture fx;
  const ServiceResult result =
      fx.run(fx.options({{"alice", 1}, {"bob", 1}}), burst(4));
  ASSERT_EQ(result.admitted, 8);
  ASSERT_EQ(result.rejected, 0);
  const double a = tenant_of(result.report, "alice").slot_seconds;
  const double b = tenant_of(result.report, "bob").slot_seconds;
  ASSERT_GT(a, 0.0);
  ASSERT_GT(b, 0.0);
  EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.10);
  EXPECT_GT(result.report.fairness_index, 0.99);
}

TEST(InversionService, HeavierTenantFinishesItsBurstSooner) {
  // Equal demand, weights 3:1 — the heavier tenant owns 3/4 of the slots
  // while both are active, so its requests finish first.
  ServiceFixture fx;
  const ServiceResult result =
      fx.run(fx.options({{"alice", 3}, {"bob", 1}}), burst(3));
  ASSERT_EQ(result.admitted, 6);
  double alice_last = 0.0, bob_last = 0.0;
  for (const RequestStat& s : result.stats) {
    if (s.tenant == "alice") alice_last = std::max(alice_last, s.finish);
    if (s.tenant == "bob") bob_last = std::max(bob_last, s.finish);
  }
  EXPECT_LT(alice_last, bob_last);
  // Same completed work per tenant regardless of weights.
  const double a = tenant_of(result.report, "alice").slot_seconds;
  const double b = tenant_of(result.report, "bob").slot_seconds;
  EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.10);
}

TEST(InversionService, IdleTenantSharesAreBorrowed) {
  // One alice request with bob idle must run exactly as fast as with no
  // share policy at all: work-conserving borrowing hands alice the whole
  // cluster, not just her half.
  ServiceFixture with_shares, without_shares;
  const ServiceResult shared = with_shares.run(
      with_shares.options({{"alice", 1}, {"bob", 1}}),
      {request("alice", 0.0, 7)});
  const ServiceResult solo = without_shares.run(
      without_shares.options({}), {request("alice", 0.0, 7)});
  ASSERT_EQ(shared.admitted, 1);
  ASSERT_EQ(solo.admitted, 1);
  EXPECT_EQ(shared.stats[0].finish, solo.stats[0].finish);
  EXPECT_EQ(shared.stats[0].slot_seconds, solo.stats[0].slot_seconds);
}

// ---- determinism ------------------------------------------------------------

TEST(InversionService, SeededLoadIsReproducible) {
  LoadGenOptions load;
  load.seed = 7;
  load.tenants = {{"alice", 1, 4, 3.0, kOrder, 0, 0.0},
                  {"bob", 1, 4, 3.0, kOrder, 0, 0.0}};
  const auto requests = generate_load(load);
  ASSERT_EQ(requests.size(), 8u);
  const auto again = generate_load(load);  // the sequence itself
  ASSERT_EQ(again.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(again[i].tenant, requests[i].tenant);
    EXPECT_EQ(again[i].seed, requests[i].seed);
    EXPECT_EQ(again[i].arrival_seconds, requests[i].arrival_seconds);
  }

  ServiceFixture fx1, fx2;
  const ServiceOptions o1 = fx1.options(shares_of(load));
  const ServiceOptions o2 = fx2.options(shares_of(load));
  const ServiceResult r1 = fx1.run(o1, requests);
  const ServiceResult r2 = fx2.run(o2, requests);
  // Bit-identical reports, including every percentile and span.
  EXPECT_EQ(run_report_json(r1.report), run_report_json(r2.report));
  EXPECT_EQ(r1.makespan, r2.makespan);
}

// ---- admission control ------------------------------------------------------

TEST(InversionService, OverloadShedsInsteadOfQueueing) {
  // Measure the uncontended latency first, then offer far more than the
  // service can run with a shallow queue: the excess must be rejected at
  // arrival, rejections must land in the per-tenant report, and the p99 of
  // ACCEPTED requests must stay within 3x the uncontended latency.
  ServiceFixture probe_fx;
  const ServiceOptions probe_options =
      probe_fx.options({{"alice", 1}, {"bob", 1}});
  const ServiceResult probe =
      probe_fx.run(probe_options, {request("alice", 0.0, 1)});
  const double base = probe.stats[0].finish - probe.stats[0].arrival;
  ASSERT_GT(base, 0.0);

  // >2x capacity: arrivals every base/6 while only ~2/base per second can
  // complete; depth-1 queue.
  ServiceFixture fx;
  ServiceOptions options = fx.options({{"alice", 1}, {"bob", 1}},
                                      /*max_concurrent=*/2,
                                      /*queue_depth=*/1);
  std::vector<InversionRequest> requests;
  for (int i = 0; i < 18; ++i) {
    requests.push_back(request(i % 2 == 0 ? "alice" : "bob",
                               static_cast<double>(i) * base / 6.0,
                               300 + static_cast<std::uint64_t>(i)));
  }
  const ServiceResult result = fx.run(options, requests);
  EXPECT_EQ(result.submitted, 18);
  EXPECT_GT(result.rejected, 0);
  EXPECT_EQ(result.admitted + result.rejected, result.submitted);

  const TenantReport& alice = tenant_of(result.report, "alice");
  const TenantReport& bob = tenant_of(result.report, "bob");
  EXPECT_EQ(alice.rejected + bob.rejected, result.rejected);
  EXPECT_EQ(alice.submitted + bob.submitted, 18);

  std::vector<double> latencies;
  for (const RequestStat& s : result.stats) {
    if (!s.rejected) latencies.push_back(s.finish - s.arrival);
  }
  EXPECT_LE(percentile(latencies, 0.99), 3.0 * base);
}

TEST(InversionService, PerTenantQuotaProtectsTheQueue) {
  // Alice floods at t=0; bob arrives a moment later. With a per-tenant
  // quota bob still gets in; without it alice's burst fills the queue.
  ServiceFixture fx;
  ServiceOptions options = fx.options({{"alice", 1}, {"bob", 1}},
                                      /*max_concurrent=*/1,
                                      /*queue_depth=*/2);
  options.admission.per_tenant_queue_limit = 1;
  std::vector<InversionRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(request("alice", 0.0, 400 + static_cast<std::uint64_t>(i)));
  }
  requests.push_back(request("bob", 1e-6, 500));
  const ServiceResult result = fx.run(options, requests);
  EXPECT_EQ(tenant_of(result.report, "bob").rejected, 0);
  EXPECT_GT(tenant_of(result.report, "alice").rejected, 0);
}

TEST(InversionService, RejectsRequestFromUnknownTenant) {
  ServiceFixture fx;
  EXPECT_THROW(fx.run(fx.options({{"alice", 1}, {"bob", 1}}),
                      {request("mallory", 0.0, 1)}),
               InvalidArgument);
}

// ---- dispatch order ---------------------------------------------------------

TEST(InversionService, PriorityOrdersATenantsBacklog) {
  // One execution slot; r0 dispatches on arrival, the rest queue. At each
  // completion the highest-priority queued request goes next.
  ServiceFixture fx;
  const ServiceOptions options =
      fx.options({{"alice", 1}}, /*max_concurrent=*/1);
  std::vector<InversionRequest> requests = {
      request("alice", 0.0, 1, /*priority=*/0),
      request("alice", 0.0, 2, /*priority=*/0),
      request("alice", 0.0, 3, /*priority=*/5),
      request("alice", 0.0, 4, /*priority=*/1),
  };
  const ServiceResult result = fx.run(options, requests);
  ASSERT_EQ(result.admitted, 4);
  // Dispatch order: r0 (running before the rest arrive), r2 (pri 5),
  // r3 (pri 1), r1 (pri 0).
  EXPECT_LT(result.stats[0].dispatch, result.stats[2].dispatch);
  EXPECT_LT(result.stats[2].dispatch, result.stats[3].dispatch);
  EXPECT_LT(result.stats[3].dispatch, result.stats[1].dispatch);
}

TEST(InversionService, DeadlineMissesAreCounted) {
  ServiceFixture fx;
  const ServiceOptions options =
      fx.options({{"alice", 1}}, /*max_concurrent=*/1);
  InversionRequest tight = request("alice", 0.0, 1);
  tight.deadline_seconds = 1e-9;  // unmeetable
  InversionRequest loose = request("alice", 0.0, 2);
  loose.deadline_seconds = 1e9;
  const ServiceResult result = fx.run(options, {tight, loose});
  EXPECT_EQ(tenant_of(result.report, "alice").deadline_misses, 1);
}

// ---- results are real inversions --------------------------------------------

TEST(InversionService, RequestsProduceVerifiableInverses) {
  // The service is not only a scheduler: each admitted request runs the
  // actual pipeline. Re-run one request's matrix through the report lanes
  // and check request spans exist and are ordered.
  ServiceFixture fx;
  const ServiceResult result = fx.run(
      fx.options({{"alice", 1}, {"bob", 1}}),
      {request("alice", 0.0, 11), request("bob", 0.0, 12)});
  ASSERT_EQ(result.report.request_spans.size(), 2u);
  for (const RequestSpan& span : result.report.request_spans) {
    EXPECT_LE(span.arrival, span.dispatch);
    EXPECT_LT(span.dispatch, span.finish);
    EXPECT_FALSE(span.rejected);
  }
  // The cluster-level report saw every job of both requests.
  EXPECT_GT(result.report.jobs, 0);
  EXPECT_GT(result.report.busy_slot_seconds, 0.0);
  EXPECT_EQ(result.report.failures_recovered, 0);
}

// ---- chaos: service-level retry and abandonment -----------------------------

struct ChaosServiceRun {
  ServiceResult result;
  std::string report_json;
};

// Replication 1 plus one armed read error: the first read touching the
// chosen node throws a transient DfsError (no other replica to fail over
// to), the request's pipeline dies, and the service's retry policy decides
// what happens next. Everything is rebuilt per run — a chaos engine's
// applied-event state is monotonic.
ChaosServiceRun run_with_chaos(const std::vector<ChaosEvent>& events,
                               RetryPolicy retry, double deadline = 0.0) {
  MetricsRegistry metrics;
  const CostModel model = CostModel::ec2_medium().scaled_down(40.0);
  Cluster cluster(4, model);
  dfs::DfsConfig cfg;
  cfg.replication = 1;
  dfs::Dfs fs(4, cfg, &metrics);
  ThreadPool pool(4);
  ChaosEngine chaos;
  for (const ChaosEvent& e : events) chaos.add_event(e);
  fs.bind_chaos(&chaos, model.network_bandwidth);

  ServiceOptions options;
  options.max_concurrent = 1;
  options.inversion.nb = kNb;
  options.inversion.work_dir = "/svc";
  options.retry = retry;
  InversionService svc(&cluster, &fs, &pool, options, nullptr, &metrics,
                       &chaos);
  InversionRequest r = request("default", 0.0, 7);
  r.deadline_seconds = deadline;
  ChaosServiceRun run;
  run.result = svc.run({r});
  run.report_json = run_report_json(run.result.report);
  return run;
}

const std::vector<ChaosEvent> kReadErrorAtStart = {
    {ChaosEventKind::kBlockReadError, 0.0, 1, 1.0}};

TEST(ServiceChaos, TransientReadErrorIsRetriedToSuccess) {
  RetryPolicy retry;
  retry.backoff_seconds = 5.0;
  const ChaosServiceRun run = run_with_chaos(kReadErrorAtStart, retry);
  EXPECT_EQ(run.result.admitted, 1);
  EXPECT_EQ(run.result.retries, 1) << "the failed attempt was never retried";
  EXPECT_EQ(run.result.unrecoverable, 0);
  ASSERT_EQ(run.result.stats.size(), 1u);
  EXPECT_EQ(run.result.stats[0].retries, 1);
  EXPECT_FALSE(run.result.stats[0].unrecoverable);
  // The second attempt starts after the backoff, so the request's span
  // stretches past the retry delay.
  EXPECT_GE(run.result.stats[0].finish, retry.backoff_seconds);
  EXPECT_EQ(run.result.report.recovery.request_retries, 1);
  EXPECT_EQ(run.result.report.recovery.requests_unrecoverable, 0);
}

TEST(ServiceChaos, ExhaustedRetryBudgetAbandonsTheRequest) {
  RetryPolicy retry;
  retry.max_retries = 0;
  const ChaosServiceRun run = run_with_chaos(kReadErrorAtStart, retry);
  EXPECT_EQ(run.result.retries, 0);
  EXPECT_EQ(run.result.unrecoverable, 1);
  ASSERT_EQ(run.result.stats.size(), 1u);
  EXPECT_TRUE(run.result.stats[0].unrecoverable);
  // Abandon time is the failure instant — here t=0, the dispatch time.
  EXPECT_GE(run.result.stats[0].finish, run.result.stats[0].dispatch);
  EXPECT_EQ(run.result.report.recovery.requests_unrecoverable, 1);
}

TEST(ServiceChaos, RetryPastTheDeadlineAbortsInstead) {
  RetryPolicy retry;
  retry.backoff_seconds = 5.0;  // next attempt at t=5, deadline at t=1
  const ChaosServiceRun run =
      run_with_chaos(kReadErrorAtStart, retry, /*deadline=*/1.0);
  EXPECT_EQ(run.result.retries, 0)
      << "a retry that cannot meet the deadline must not be scheduled";
  EXPECT_EQ(run.result.unrecoverable, 1);
}

TEST(ServiceChaos, SameSeedChaosRunsAreBitIdentical) {
  RetryPolicy retry;
  retry.backoff_seconds = 5.0;
  const ChaosServiceRun a = run_with_chaos(kReadErrorAtStart, retry);
  const ChaosServiceRun b = run_with_chaos(kReadErrorAtStart, retry);
  EXPECT_EQ(a.report_json, b.report_json);
}

// ---- load generation and trace parsing --------------------------------------

TEST(LoadGen, OpenLoopArrivalsAreSortedAndTenantStable) {
  LoadGenOptions load;
  load.seed = 9;
  load.tenants = {{"a", 1, 6, 2.0, 16, 0, 0.0}, {"b", 1, 6, 2.0, 16, 0, 0.0}};
  const auto requests = generate_load(load);
  ASSERT_EQ(requests.size(), 12u);
  for (std::size_t i = 1; i < requests.size(); ++i) {
    EXPECT_LE(requests[i - 1].arrival_seconds, requests[i].arrival_seconds);
  }
  // Adding a tenant must not perturb existing tenants' arrival times.
  LoadGenOptions more = load;
  more.tenants.push_back({"c", 1, 3, 2.0, 16, 0, 0.0});
  std::vector<double> a_before, a_after;
  for (const auto& r : requests) {
    if (r.tenant == "a") a_before.push_back(r.arrival_seconds);
  }
  for (const auto& r : generate_load(more)) {
    if (r.tenant == "a") a_after.push_back(r.arrival_seconds);
  }
  EXPECT_EQ(a_before, a_after);
}

TEST(LoadGen, ClosedLoopBurstsAtTimeZero) {
  LoadGenOptions load;
  load.closed_loop = true;
  load.tenants = {{"a", 2, 3, 1.0, 16, 0, 0.0}};
  for (const auto& r : generate_load(load)) {
    EXPECT_EQ(r.arrival_seconds, 0.0);
  }
  EXPECT_EQ(shares_of(load).size(), 1u);
  EXPECT_EQ(shares_of(load)[0].weight, 2);
}

TEST(RequestTrace, ParsesTenantsAndRequests) {
  const std::string text =
      "# sample\n"
      "tenant alice 2\n"
      "tenant bob 1\n"
      "request alice 0.0 24 7\n"
      "request bob 0.5 24 8 3 10.0\n"
      "\n";
  const RequestTrace trace = parse_request_trace(text);
  ASSERT_EQ(trace.shares.size(), 2u);
  EXPECT_EQ(trace.shares[0].tenant, "alice");
  EXPECT_EQ(trace.shares[0].weight, 2);
  ASSERT_EQ(trace.requests.size(), 2u);
  EXPECT_EQ(trace.requests[0].tenant, "alice");
  EXPECT_EQ(trace.requests[1].priority, 3);
  EXPECT_EQ(trace.requests[1].deadline_seconds, 10.0);
}

TEST(RequestTrace, RejectsMalformedInput) {
  EXPECT_THROW(parse_request_trace("tenant alice\n"), InvalidArgument);
  EXPECT_THROW(parse_request_trace("bogus line\n"), InvalidArgument);
  EXPECT_THROW(parse_request_trace("tenant alice 1\n"), InvalidArgument);
  EXPECT_THROW(parse_request_trace("request ghost 0 24 7\n"),
               InvalidArgument);
  EXPECT_THROW(
      parse_request_trace("tenant a 1\nrequest a -1 24 7\n"),
      InvalidArgument);
  EXPECT_THROW(
      parse_request_trace("tenant a 1\ntenant a 2\nrequest a 0 24 7\n"),
      InvalidArgument);
}

TEST(RetryBackoff, EscalatesAndClampsAtMax) {
  RetryPolicy retry;
  retry.backoff_seconds = 60.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_seconds = 900.0;
  EXPECT_EQ(retry_backoff(retry, 1), 60.0);
  EXPECT_EQ(retry_backoff(retry, 2), 120.0);
  EXPECT_EQ(retry_backoff(retry, 3), 240.0);
  EXPECT_EQ(retry_backoff(retry, 4), 480.0);
  EXPECT_EQ(retry_backoff(retry, 5), 900.0);  // 960 clamped
  EXPECT_EQ(retry_backoff(retry, 6), 900.0);
}

TEST(RetryBackoff, ExtremeSettingsNeverOverflowToInfinity) {
  // The clamp applies at every escalation step, so even settings that would
  // overflow a naive pow()-style escalation (10^1000 >> DBL_MAX) stay
  // finite and exactly at the cap.
  RetryPolicy retry;
  retry.backoff_seconds = 1.0;
  retry.backoff_multiplier = 10.0;
  retry.max_backoff_seconds = 3600.0;
  const double b = retry_backoff(retry, 1000);
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_EQ(b, 3600.0);
  // Multiplier 1 never escalates.
  RetryPolicy flat;
  flat.backoff_seconds = 5.0;
  flat.backoff_multiplier = 1.0;
  flat.max_backoff_seconds = 900.0;
  EXPECT_EQ(retry_backoff(flat, 100), 5.0);
  // A base already above the cap is clamped from the first retry on.
  RetryPolicy high;
  high.backoff_seconds = 100.0;
  high.backoff_multiplier = 2.0;
  high.max_backoff_seconds = 50.0;
  EXPECT_EQ(retry_backoff(high, 1), 50.0);
}

}  // namespace
}  // namespace mri::service
