// Scheduler unit tests: wave placement, dead-node slot loss, retry
// ready-times, speculation win/lose accounting, and the trace invariants
// the run report relies on (no slot overlap, monotone per-slot times,
// max event end == phase duration).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "common/error.hpp"
#include "mapreduce/scheduler.hpp"
#include "net/topology.hpp"

namespace mri::mr {
namespace {

CostModel flat_model(int slots_per_node = 1) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  m.slots_per_node = slots_per_node;
  return m;
}

Attempt ok_attempt(std::uint64_t flops) {
  Attempt a;
  a.io.mults = flops;
  return a;
}

Attempt failed_attempt(std::uint64_t flops) {
  Attempt a = ok_attempt(flops);
  a.failed = true;
  return a;
}

/// Events sharing a slot must be disjoint and in non-decreasing time order.
void expect_no_slot_overlap(const PhaseSchedule& s) {
  std::map<int, std::vector<TaskTraceEvent>> by_slot;
  for (const TaskTraceEvent& e : s.trace) {
    EXPECT_LE(e.start, e.end) << "negative-length span";
    by_slot[e.slot].push_back(e);
  }
  for (auto& [slot, events] : by_slot) {
    std::sort(events.begin(), events.end(),
              [](const TaskTraceEvent& a, const TaskTraceEvent& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].end, events[i].start + 1e-12)
          << "slot " << slot << " runs two attempts at once";
    }
  }
}

double max_trace_end(const PhaseSchedule& s) {
  double end = 0.0;
  for (const TaskTraceEvent& e : s.trace) end = std::max(end, e.end);
  return end;
}

// ---- waves -----------------------------------------------------------------

TEST(SchedulerTrace, TwoWavesFillBothSlots) {
  Cluster cluster(2, flat_model());
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  ASSERT_EQ(s.trace.size(), 4u);
  std::map<int, int> per_slot;
  for (const TaskTraceEvent& e : s.trace) ++per_slot[e.slot];
  ASSERT_EQ(per_slot.size(), 2u);  // both slots used
  for (const auto& [slot, n] : per_slot) EXPECT_EQ(n, 2);  // 2 waves each
  expect_no_slot_overlap(s);
  EXPECT_NEAR(max_trace_end(s), s.duration, 1e-12);
}

TEST(SchedulerTrace, EventsCarryTaskAndAttempt) {
  Cluster cluster(4, flat_model());
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  ASSERT_EQ(s.trace.size(), 4u);
  std::vector<bool> seen(4, false);
  for (const TaskTraceEvent& e : s.trace) {
    EXPECT_EQ(e.attempt, 0);
    EXPECT_FALSE(e.failed);
    EXPECT_FALSE(e.backup);
    ASSERT_GE(e.task, 0);
    ASSERT_LT(e.task, 4);
    seen[static_cast<std::size_t>(e.task)] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// ---- dead nodes ------------------------------------------------------------

TEST(SchedulerDeadNode, FailureRemovesAllNodeSlots) {
  // 2 nodes x 2 slots. Task 0 dies at 0.5 s and takes node 0 down; the
  // node's *other* slot must stop receiving tasks too, so the remaining
  // 7 one-second attempts (6 fresh + 1 retry) share node 1's two slots:
  // the phase ends at 4.0 s, not at the 3.0 s a buggy half-dead node gives.
  Cluster cluster(2, flat_model(/*slots_per_node=*/2));
  std::vector<std::vector<Attempt>> tasks(8, {ok_attempt(1'000'000'000)});
  tasks[0] = {failed_attempt(500'000'000), ok_attempt(1'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_EQ(s.nodes_lost, 1);
  EXPECT_EQ(s.attempts_run, 9);
  EXPECT_NEAR(s.duration, 4.0, 1e-9);

  // The dead node serves nothing after the failure.
  double fail_time = 0.0;
  int dead_node = -1;
  for (const TaskTraceEvent& e : s.trace) {
    if (e.failed) {
      fail_time = e.end;
      dead_node = e.node;
    }
  }
  ASSERT_GE(dead_node, 0);
  for (const TaskTraceEvent& e : s.trace) {
    if (e.node == dead_node) {
      EXPECT_LE(e.start, fail_time)
          << "dead node " << dead_node << " received a task after dying";
    }
  }
  expect_no_slot_overlap(s);
  EXPECT_NEAR(max_trace_end(s), s.duration, 1e-12);
}

TEST(SchedulerDeadNode, AllNodesLostThrows) {
  Cluster cluster(1, flat_model(/*slots_per_node=*/2));
  std::vector<std::vector<Attempt>> tasks(1);
  tasks[0] = {failed_attempt(500'000'000), ok_attempt(1'000'000'000)};
  EXPECT_THROW(schedule_phase(cluster, tasks), Error);
}

// ---- retry ready-times -----------------------------------------------------

TEST(SchedulerRetry, WaitsForFailureDetection) {
  CostModel m = flat_model();
  m.failure_detection_seconds = 10.0;
  Cluster cluster(2, m);
  std::vector<std::vector<Attempt>> tasks(2);
  tasks[0] = {failed_attempt(500'000'000), ok_attempt(1'000'000'000)};
  tasks[1] = {ok_attempt(1'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  // Dies at 0.5, detected at 10.5 (slot on node 1 is free from 1.0), runs
  // 1 s: the retry's start is detection-bound, not slot-bound.
  const TaskTraceEvent* retry = nullptr;
  for (const TaskTraceEvent& e : s.trace) {
    if (e.task == 0 && e.attempt == 1) retry = &e;
  }
  ASSERT_NE(retry, nullptr);
  EXPECT_NEAR(retry->start, 10.5, 1e-9);
  EXPECT_NEAR(s.duration, 11.5, 1e-9);
  EXPECT_EQ(retry->node, 1);  // node 0 is dead
}

TEST(SchedulerRetry, SlotBoundWhenDetectionIsFast) {
  // With instant detection the retry still waits for a live slot (§7.4:
  // "did not restart until one of the other mappers finished").
  Cluster cluster(2, flat_model());
  std::vector<std::vector<Attempt>> tasks(2);
  tasks[0] = {failed_attempt(500'000'000), ok_attempt(1'000'000'000)};
  tasks[1] = {ok_attempt(1'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 2.0, 1e-9);
}

// ---- speculation -----------------------------------------------------------

CostModel spec_model(bool speculation, double variance) {
  CostModel m = flat_model();
  m.node_speed_variance = variance;
  m.speculative_execution = speculation;
  m.speculative_threshold = 1.2;
  return m;
}

TEST(SchedulerSpeculation, WinningBackupChargedAndTruncatesOriginal) {
  // Seed 13 gives speeds {1.00, 0.69, 1.34, 1.56}: the 2-s task on node 1
  // straggles to 2.9 s; the idle 1.56x node backs it up and wins (~2.77 s).
  Cluster cluster(4, spec_model(true, 0.6), /*seed=*/13);
  std::vector<std::vector<Attempt>> tasks(3, {ok_attempt(2'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  ASSERT_GE(s.backups_run, 1);
  // The backup's re-done work is charged, reads and flops only.
  EXPECT_EQ(s.speculative_io.mults,
            static_cast<std::uint64_t>(s.backups_run) * 2'000'000'000u);
  EXPECT_EQ(s.speculative_io.bytes_written, 0u);

  const TaskTraceEvent* backup = nullptr;
  for (const TaskTraceEvent& e : s.trace) {
    if (e.backup) backup = &e;
  }
  ASSERT_NE(backup, nullptr);
  // The winner's end is the phase-effective completion; the beaten original
  // is killed (truncated) at the same moment, so nothing outlives duration.
  EXPECT_NEAR(max_trace_end(s), s.duration, 1e-12);
  expect_no_slot_overlap(s);
}

TEST(SchedulerSpeculation, LosingBackupStillChargedAndKilled) {
  // 10x the *work* (not a slow node): the backup cannot win, loses, and is
  // killed when the original finishes — but its I/O was still spent.
  Cluster cluster(4, spec_model(true, 0.0));
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  tasks[3] = {ok_attempt(10'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 10.0, 1e-9);  // speculation rescues nothing
  ASSERT_EQ(s.backups_run, 1);
  EXPECT_EQ(s.speculative_io.mults, 10'000'000'000u);
  const TaskTraceEvent* backup = nullptr;
  for (const TaskTraceEvent& e : s.trace) {
    if (e.backup) backup = &e;
  }
  ASSERT_NE(backup, nullptr);
  EXPECT_EQ(backup->task, 3);
  EXPECT_NEAR(backup->end, 10.0, 1e-9);  // killed at the original's finish
  EXPECT_NEAR(max_trace_end(s), s.duration, 1e-12);
  expect_no_slot_overlap(s);
}

TEST(SchedulerSpeculation, OffMeansNoBackupIo) {
  Cluster cluster(4, spec_model(false, 0.6), /*seed=*/13);
  std::vector<std::vector<Attempt>> tasks(3, {ok_attempt(2'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_EQ(s.backups_run, 0);
  EXPECT_EQ(s.speculative_io, IoStats{});
}

TEST(SchedulerSpeculation, DeadNodeSlotsNotUsedForBackups) {
  // One node dies; with speculation on, its idle slots must not host
  // backups. 2 nodes x 2 slots, node with the failure is dead.
  CostModel m = spec_model(true, 0.0);
  m.slots_per_node = 2;
  Cluster cluster(2, m);
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  tasks[0] = {failed_attempt(500'000'000), ok_attempt(1'000'000'000)};
  tasks[3] = {ok_attempt(5'000'000'000)};  // straggler to tempt speculation
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  int dead_node = -1;
  double fail_time = 0.0;
  for (const TaskTraceEvent& e : s.trace) {
    if (e.failed) {
      dead_node = e.node;
      fail_time = e.end;
    }
  }
  ASSERT_GE(dead_node, 0);
  for (const TaskTraceEvent& e : s.trace) {
    if (e.backup) {
      EXPECT_NE(e.node, dead_node);
    }
    if (e.node == dead_node) {
      EXPECT_LE(e.start, fail_time);
    }
  }
  expect_no_slot_overlap(s);
}

// ---- racked topology / flow-level network model -----------------------------

std::shared_ptr<const net::Topology> make_topology(int hosts, int racks,
                                                   double oversub,
                                                   double bandwidth,
                                                   bool rack_aware = true) {
  net::TopologyOptions o;
  o.kind = net::TopologyKind::kRacked;
  o.racks = racks;
  o.oversubscription = oversub;
  o.rack_aware_placement = rack_aware;
  return std::make_shared<const net::Topology>(hosts, bandwidth, o);
}

TEST(SchedulerRacked, FlatTopologyIsIdenticalToNoTopology) {
  CostModel m = flat_model();
  m.network_bandwidth = 50e6;
  std::vector<std::vector<Attempt>> tasks(6, {ok_attempt(1'000'000'000)});
  tasks[2] = {failed_attempt(400'000'000), ok_attempt(1'000'000'000)};

  Cluster bare(4, m, /*seed=*/3);
  const PhaseSchedule a = schedule_phase(bare, tasks);

  Cluster with_flat(4, m, /*seed=*/3);
  with_flat.set_topology(
      std::make_shared<const net::Topology>(4, m.network_bandwidth));
  const PhaseSchedule b = schedule_phase(with_flat, tasks);

  EXPECT_EQ(a.duration, b.duration);  // bit-identical
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].start, b.trace[i].start);
    EXPECT_EQ(a.trace[i].end, b.trace[i].end);
    EXPECT_EQ(a.trace[i].node, b.trace[i].node);
    EXPECT_EQ(a.trace[i].slot, b.trace[i].slot);
  }
  EXPECT_TRUE(b.link_loads.empty());
  EXPECT_EQ(b.rack_local_attempts, 0);
}

TEST(SchedulerRacked, TransferlessAttemptsMatchScalarDurations) {
  // Attempts without recorded transfers cost exactly model.task_seconds even
  // under a racked topology: the racked path only changes how recorded
  // network traffic is charged.
  CostModel m = flat_model();
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});

  Cluster bare(4, m, /*seed=*/3);
  const PhaseSchedule a = schedule_phase(bare, tasks);
  Cluster racked_cluster(4, m, /*seed=*/3);
  racked_cluster.set_topology(
      make_topology(4, 2, 4.0, m.network_bandwidth, /*rack_aware=*/false));
  const PhaseSchedule b = schedule_phase(racked_cluster, tasks);
  EXPECT_EQ(a.duration, b.duration);
}

TEST(SchedulerRacked, OversubscriptionStretchesCrossRackTransfers) {
  // One task per node, each reading 90 MB from a node in the other rack.
  // The scalar model charges 90 MB at network_bandwidth; under 9:1
  // oversubscription the rack uplink (2 * bw / 9) is the bottleneck and the
  // flow simulation must stretch the phase well past the scalar duration.
  CostModel m = flat_model();
  m.network_bandwidth = 100e6;
  m.disk_bandwidth = 100e6;
  const int n = 4;
  std::vector<std::vector<Attempt>> tasks;
  for (int t = 0; t < n; ++t) {
    Attempt a = ok_attempt(1'000'000);
    a.io.bytes_read = 90'000'000;
    a.io.bytes_transferred = 90'000'000;
    const int src = (t + 2) % n;  // other rack under 2 racks of 2
    a.transfers.push_back(
        {src, t, 90'000'000, net::TransferKind::kRead});
    tasks.push_back({a});
  }

  Cluster flat_cluster(n, m, /*seed=*/5);
  const PhaseSchedule flat = schedule_phase(flat_cluster, tasks);

  Cluster contended(n, m, /*seed=*/5);
  contended.set_topology(
      make_topology(n, 2, 9.0, m.network_bandwidth, /*rack_aware=*/false));
  const PhaseSchedule racked = schedule_phase(contended, tasks);

  EXPECT_GT(racked.duration, 1.3 * flat.duration);
  EXPECT_EQ(racked.cross_rack_attempts + racked.rack_local_attempts, n);
  EXPECT_EQ(racked.net_cross_rack_bytes, 4u * 90'000'000u);
  ASSERT_FALSE(racked.link_loads.empty());
  // Rack uplinks (ids 2H..2H+R) saw the traffic and hit saturation.
  const net::LinkLoad& up = racked.link_loads[2 * n];
  EXPECT_GT(up.bytes, 0u);
  EXPECT_NEAR(up.peak_utilization, 1.0, 1e-6);

  // A non-blocking fabric (1:1) matches the scalar time: access links run
  // at the same bandwidth the scalar model charges.
  Cluster clean(n, m, /*seed=*/5);
  clean.set_topology(
      make_topology(n, 2, 1.0, m.network_bandwidth, /*rack_aware=*/false));
  const PhaseSchedule smooth = schedule_phase(clean, tasks);
  EXPECT_NEAR(smooth.duration, flat.duration, 1e-6 * flat.duration);
}

TEST(SchedulerRacked, RackAwareDispatchPrefersHomeRack) {
  // 4 nodes, 2 racks, 1 slot each, 4 tasks: every task's home node (t % 4)
  // is free at t=0, so rack-aware dispatch should land every fresh attempt
  // in its home rack.
  CostModel m = flat_model();
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  Cluster cluster(4, m, /*seed=*/7);
  cluster.set_topology(
      make_topology(4, 2, 4.0, m.network_bandwidth, /*rack_aware=*/true));
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_EQ(s.rack_local_attempts, 4);
  EXPECT_EQ(s.cross_rack_attempts, 0);
  expect_no_slot_overlap(s);
}

TEST(SchedulerRacked, ByteDistanceSplitFollowsPlacement) {
  // A single task with one node-local and one same-rack transfer; dispatch
  // pins it to its home node (task 0 -> node 0, rack 0).
  CostModel m = flat_model();
  Attempt a = ok_attempt(1'000'000);
  a.io.bytes_read = 30'000'000;
  a.io.bytes_transferred = 10'000'000;
  a.transfers.push_back({0, 0, 20'000'000, net::TransferKind::kRead});
  a.transfers.push_back({1, 0, 10'000'000, net::TransferKind::kRead});
  Cluster cluster(4, m, /*seed=*/7);
  cluster.set_topology(make_topology(4, 2, 1.0, m.network_bandwidth));
  const PhaseSchedule s = schedule_phase(cluster, {{a}});
  EXPECT_EQ(s.net_node_local_bytes, 20'000'000u);
  EXPECT_EQ(s.net_rack_local_bytes, 10'000'000u);
  EXPECT_EQ(s.net_cross_rack_bytes, 0u);
}

// ---- fair-share slot pool ---------------------------------------------------

TEST(SlotPoolShares, LargestRemainderApportionment) {
  SlotPool pool(8);
  pool.set_shares({{"a", 3}, {"b", 1}});
  EXPECT_EQ(pool.slots_of("a").size(), 6u);
  EXPECT_EQ(pool.slots_of("b").size(), 2u);
  EXPECT_TRUE(pool.slots_of("nobody").empty());
}

TEST(SlotPoolShares, EveryTenantGetsAtLeastOneSlot) {
  SlotPool pool(4);
  pool.set_shares({{"whale", 100}, {"minnow", 1}});
  EXPECT_EQ(pool.slots_of("whale").size(), 3u);
  EXPECT_EQ(pool.slots_of("minnow").size(), 1u);
}

TEST(SlotPoolShares, ValidatesShares) {
  SlotPool pool(2);
  EXPECT_THROW(pool.set_shares({{"a", 1}, {"b", 1}, {"c", 1}}),
               InvalidArgument);  // more tenants than slots
  EXPECT_THROW(pool.set_shares({{"a", 0}}), InvalidArgument);
  EXPECT_THROW(pool.set_shares({{"", 1}}), InvalidArgument);
  EXPECT_THROW(pool.set_shares({{"a", 1}, {"a", 1}}), InvalidArgument);
}

TEST(SlotPoolShares, ActiveTenantsMaskEachOther) {
  SlotPool pool(4);
  pool.set_shares({{"a", 1}, {"b", 1}});
  pool.acquire("b");
  const std::vector<double> masked = pool.offsets_at(0.0, "a");
  const std::vector<int> a_slots = pool.slots_of("a");
  const std::vector<int> b_slots = pool.slots_of("b");
  for (int s : a_slots) EXPECT_EQ(masked[static_cast<std::size_t>(s)], 0.0);
  for (int s : b_slots) {
    EXPECT_EQ(masked[static_cast<std::size_t>(s)], SlotPool::unavailable());
  }
  // Work-conserving: once b leaves the system its slots are borrowable.
  pool.release("b");
  for (const double off : pool.offsets_at(0.0, "a")) EXPECT_EQ(off, 0.0);
}

TEST(SlotPoolShares, EmptyTenantSeesWholePool) {
  SlotPool pool(4);
  pool.set_shares({{"a", 1}, {"b", 1}});
  pool.acquire("a");
  pool.acquire("b");
  for (const double off : pool.offsets_at(0.0, "")) EXPECT_EQ(off, 0.0);
  EXPECT_THROW(pool.offsets_at(0.0, "stranger"), InvalidArgument);
  EXPECT_THROW(pool.acquire("stranger"), InvalidArgument);
}

TEST(SlotPoolShares, ScheduleSkipsUnavailableSlots) {
  // 2 nodes x 2 slots; mask node 1's two slots entirely. All four tasks
  // must run on node 0's two slots in two waves.
  Cluster cluster(2, flat_model(/*slots_per_node=*/2));
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  std::vector<double> busy(4, 0.0);
  busy[2] = busy[3] = SlotPool::unavailable();
  const PhaseSchedule s = schedule_phase(cluster, tasks, &busy);
  for (const TaskTraceEvent& e : s.trace) {
    EXPECT_EQ(e.node, 0);
    EXPECT_LT(e.slot, 2);
  }
  EXPECT_NEAR(s.duration, 2.0, 1e-9);
  expect_no_slot_overlap(s);
}

TEST(SlotPoolShares, AllSlotsUnavailableThrows) {
  Cluster cluster(1, flat_model(/*slots_per_node=*/2));
  std::vector<std::vector<Attempt>> tasks(1, {ok_attempt(1'000'000'000)});
  const std::vector<double> busy(2, SlotPool::unavailable());
  EXPECT_THROW(schedule_phase(cluster, tasks, &busy), InvalidArgument);
}

}  // namespace
}  // namespace mri::mr
