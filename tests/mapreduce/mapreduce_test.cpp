// The MapReduce runtime exercised as a general-purpose system: a word-count
// style job, shuffle semantics, scheduling/failure simulation, pipelines.
#include <gtest/gtest.h>

#include <sstream>

#include "mapreduce/pipeline.hpp"
#include "mapreduce/runtime.hpp"
#include "mapreduce/scheduler.hpp"
#include "mapreduce/shuffle.hpp"
#include "mapreduce/trace_export.hpp"

namespace mri::mr {
namespace {

// ---- shuffle ----------------------------------------------------------------

TEST(Shuffle, PartitionsByKeyMod) {
  std::vector<std::vector<KeyValue>> outputs(2);
  outputs[0] = {{0, "a"}, {1, "b"}, {2, "c"}};
  outputs[1] = {{1, "d"}};
  const ShuffleResult r = shuffle(std::move(outputs), 2, nullptr);
  ASSERT_EQ(r.partitions.size(), 2u);
  EXPECT_EQ(r.partitions[0].at(0), (std::vector<std::string>{"a"}));
  EXPECT_EQ(r.partitions[0].at(2), (std::vector<std::string>{"c"}));
  EXPECT_EQ(r.partitions[1].at(1), (std::vector<std::string>{"b", "d"}));
}

TEST(Shuffle, NegativeKeysLandInRange) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{-3, "x"}};
  const ShuffleResult r = shuffle(std::move(outputs), 2, nullptr);
  EXPECT_EQ(r.partitions[1].at(-3).size(), 1u);
}

TEST(Shuffle, CustomPartitioner) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{100, "x"}, {200, "y"}};
  const ShuffleResult r = shuffle(
      std::move(outputs), 3, [](std::int64_t, int) { return 2; });
  EXPECT_TRUE(r.partitions[0].empty());
  EXPECT_EQ(r.partitions[2].size(), 2u);
}

TEST(Shuffle, CountsBytes) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{1, "abcd"}};
  const ShuffleResult r = shuffle(std::move(outputs), 1, nullptr);
  EXPECT_EQ(r.total_bytes, 8u + 4u);
}

TEST(Shuffle, BadPartitionerCaught) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{1, "x"}};
  EXPECT_THROW(
      shuffle(std::move(outputs), 2, [](std::int64_t, int) { return 7; }),
      Error);
}

TEST(Shuffle, WithoutClusterSizeEverythingIsRemote) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{0, "ab"}, {1, "cd"}};
  const ShuffleResult r = shuffle(std::move(outputs), 2, nullptr);
  EXPECT_EQ(r.local_bytes, 0u);
  EXPECT_EQ(r.remote_bytes, r.total_bytes);
}

TEST(Shuffle, SplitsLocalAndRemoteByNode) {
  // 2 map tasks on a 2-node cluster: map t runs on node t, reduce partition
  // p lands on node p. Keys equal to the mapper's node stay local.
  std::vector<std::vector<KeyValue>> outputs(2);
  outputs[0] = {{0, "aa"}, {1, "bb"}};  // key 0 local, key 1 remote
  outputs[1] = {{0, "cc"}, {1, "dd"}};  // key 0 remote, key 1 local
  const ShuffleResult r =
      shuffle(std::move(outputs), 2, nullptr, /*cluster_size=*/2);
  const std::uint64_t pair_bytes = 8 + 2;
  EXPECT_EQ(r.total_bytes, 4 * pair_bytes);
  EXPECT_EQ(r.local_bytes, 2 * pair_bytes);
  EXPECT_EQ(r.remote_bytes, 2 * pair_bytes);
  EXPECT_EQ(r.local_bytes + r.remote_bytes, r.total_bytes);
}

TEST(Shuffle, MorePartitionsThanNodesWrapAround) {
  // Partition 2 on a 2-node cluster lands on node 0 again.
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{2, "xy"}};  // map task 0 = node 0; partition 2 -> node 0
  const ShuffleResult r =
      shuffle(std::move(outputs), 3, nullptr, /*cluster_size=*/2);
  EXPECT_EQ(r.local_bytes, r.total_bytes);
  EXPECT_EQ(r.remote_bytes, 0u);
}

// ---- scheduler -----------------------------------------------------------------

Attempt ok_attempt(std::uint64_t flops) {
  Attempt a;
  a.io.mults = flops;
  return a;
}

TEST(Scheduler, SingleWave) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  Cluster cluster(4, m);
  // 4 equal tasks on 4 nodes: duration = one task.
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(2'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 2.0, 1e-9);
  EXPECT_EQ(s.attempts_run, 4);
  EXPECT_EQ(s.nodes_lost, 0);
}

TEST(Scheduler, TwoWaves) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  Cluster cluster(2, m);
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 2.0, 1e-9);  // 4 tasks / 2 slots = 2 waves
}

TEST(Scheduler, FailureSerializesRetry) {
  // The §7.4 scenario: all slots busy; one task fails halfway and loses its
  // node; the retry starts only when another task finishes.
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  Cluster cluster(2, m);
  std::vector<std::vector<Attempt>> tasks(2);
  tasks[0] = {ok_attempt(1'000'000'000)};  // 1 s, succeeds
  Attempt ghost = ok_attempt(500'000'000);  // dies at 0.5 s
  ghost.failed = true;
  tasks[1] = {ghost, ok_attempt(1'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  // Node lost at 0.5 s; retry waits for the other node (free at 1.0 s) and
  // runs 1 s: total 2.0 s instead of 1.0 s.
  EXPECT_NEAR(s.duration, 2.0, 1e-9);
  EXPECT_EQ(s.nodes_lost, 1);
  EXPECT_EQ(s.attempts_run, 3);
}

TEST(Scheduler, SlowNodeStretchesPhase) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.4;
  Cluster cluster(4, m, /*seed=*/123);
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  double slowest = 1.0;
  for (int i = 0; i < 4; ++i)
    slowest = std::max(slowest, 1.0 / cluster.speed_factor(i));
  EXPECT_NEAR(s.duration, slowest, 1e-9);
}

TEST(Scheduler, EmptyPhase) {
  Cluster cluster(2, CostModel{});
  EXPECT_EQ(schedule_phase(cluster, {}).duration, 0.0);
}

CostModel spec_model(bool speculation, double variance) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = variance;
  m.speculative_execution = speculation;
  m.speculative_threshold = 1.2;
  return m;
}

TEST(Scheduler, SpeculationCannotRescueBigWork) {
  // A task with 10x the *work* (not a slow node) gains nothing from a
  // backup: the backup needs the same 10 s.
  Cluster cluster(4, spec_model(true, 0.0));
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  tasks[3] = {ok_attempt(10'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 10.0, 1e-9);
}

TEST(Scheduler, SpeculationRescuesSlowNodeStraggler) {
  // Same work everywhere, but one node is much slower; the backup on a
  // fast idle node beats the straggler.
  // Seed 13 gives speeds {1.00, 0.69, 1.34, 1.56}: the task on node 1 runs
  // 2.9 s vs a 2.0 s median; the idle 1.56x node backs it up from 1.49 s
  // and wins at ~2.77 s.
  Cluster with_spec(4, spec_model(true, 0.6), /*seed=*/13);
  Cluster without_spec(4, spec_model(false, 0.6), /*seed=*/13);
  // Fewer tasks than slots so idle capacity exists for backups.
  std::vector<std::vector<Attempt>> tasks(3, {ok_attempt(2'000'000'000)});
  const PhaseSchedule a = schedule_phase(with_spec, tasks);
  const PhaseSchedule b = schedule_phase(without_spec, tasks);
  EXPECT_LE(a.duration, b.duration);
  // With a 0.6 spread the slowest node is ~2.5x nominal; a backup should
  // actually have been launched and won.
  EXPECT_GE(a.backups_run, 1);
  EXPECT_LT(a.duration, b.duration);
}

TEST(Scheduler, SpeculationOffByDefault) {
  CostModel m;
  Cluster cluster(4, m);
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  EXPECT_EQ(schedule_phase(cluster, tasks).backups_run, 0);
}

// ---- runtime: a classic word-count job ------------------------------------------

class WordCountMapper : public Mapper {
 public:
  void map(std::int64_t, const std::string& value, TaskContext& ctx) override {
    std::istringstream in(value);
    std::string word;
    while (in >> word) {
      // Key by word length (integer keys); value is the word itself.
      ctx.emit(static_cast<std::int64_t>(word.size()), word);
    }
  }
};

class CountReducer : public Reducer {
 public:
  void reduce(std::int64_t key, const std::vector<std::string>& values,
              TaskContext& ctx) override {
    ctx.fs().write_text("/out/len." + std::to_string(key),
                        std::to_string(values.size()), &ctx.io());
  }
};

struct RuntimeFixture {
  RuntimeFixture(int nodes)
      : cluster(nodes, CostModel::ec2_medium()),
        fs(nodes, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, &failures, &metrics) {}

  MetricsRegistry metrics;
  FailureInjector failures;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  JobRunner runner;
};

JobSpec word_count_spec(std::vector<std::string> inputs) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_files = std::move(inputs);
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = 3;
  return spec;
}

TEST(Runtime, WordCountEndToEnd) {
  RuntimeFixture fx(4);
  fx.fs.write_text("/in/0", "a bb ccc a bb");
  fx.fs.write_text("/in/1", "dddd a ccc");
  const JobResult r = fx.runner.run(word_count_spec({"/in/0", "/in/1"}));

  EXPECT_EQ(fx.fs.read_text("/out/len.1"), "3");  // a a a
  EXPECT_EQ(fx.fs.read_text("/out/len.2"), "2");  // bb bb
  EXPECT_EQ(fx.fs.read_text("/out/len.3"), "2");  // ccc ccc
  EXPECT_EQ(fx.fs.read_text("/out/len.4"), "1");  // dddd
  EXPECT_EQ(r.map_tasks, 2);
  EXPECT_EQ(r.reduce_tasks, 3);
  EXPECT_GT(r.sim_seconds,
            fx.cluster.cost_model().job_launch_seconds);  // launch charged
  EXPECT_GT(r.shuffle_bytes, 0u);
  EXPECT_EQ(fx.metrics.value("jobs"), 1u);
  EXPECT_EQ(fx.metrics.value("map_tasks"), 2u);
}

TEST(Runtime, MapOnlyJob) {
  RuntimeFixture fx(2);
  fx.fs.write_text("/in/0", "payload");
  JobSpec spec;
  spec.name = "map-only";
  spec.input_files = {"/in/0"};
  spec.mapper_factory = [] {
    class M : public Mapper {
      void map(std::int64_t, const std::string& v, TaskContext& ctx) override {
        ctx.fs().write_text("/out/copy", v, &ctx.io());
      }
    };
    return std::make_unique<M>();
  };
  const JobResult r = fx.runner.run(spec);
  EXPECT_EQ(fx.fs.read_text("/out/copy"), "payload");
  EXPECT_EQ(r.reduce_tasks, 0);
  EXPECT_EQ(r.reduce_phase_seconds, 0.0);
}

TEST(Runtime, TaskExceptionBecomesJobError) {
  RuntimeFixture fx(2);
  fx.fs.write_text("/in/0", "x");
  JobSpec spec;
  spec.name = "broken";
  spec.input_files = {"/in/0"};
  spec.mapper_factory = [] {
    class M : public Mapper {
      void map(std::int64_t, const std::string&, TaskContext&) override {
        throw NumericalError("singular");
      }
    };
    return std::make_unique<M>();
  };
  EXPECT_THROW(fx.runner.run(spec), JobError);
}

TEST(Runtime, InjectedFailureIsRecoveredAndCharged) {
  RuntimeFixture fx(4);
  for (int i = 0; i < 4; ++i)
    { const std::string n = std::to_string(i); fx.fs.write_text("/in/" + n, "w" + n); }
  fx.failures.add_rule(FailureRule{"wordcount", 2, 0, true});

  const JobResult with_failure = fx.runner.run(word_count_spec(
      {"/in/0", "/in/1", "/in/2", "/in/3"}));
  EXPECT_EQ(with_failure.failures_recovered, 1);

  RuntimeFixture clean(4);
  for (int i = 0; i < 4; ++i)
    { const std::string n = std::to_string(i); clean.fs.write_text("/in/" + n, "w" + n); }
  const JobResult no_failure = clean.runner.run(word_count_spec(
      {"/in/0", "/in/1", "/in/2", "/in/3"}));
  EXPECT_EQ(no_failure.failures_recovered, 0);
  EXPECT_GT(with_failure.sim_seconds, no_failure.sim_seconds);
}

TEST(Runtime, ShuffleLocalBytesExcludedFromNetworkTraffic) {
  RuntimeFixture fx(4);
  fx.fs.write_text("/in/0", "a bb ccc a bb");
  fx.fs.write_text("/in/1", "dddd a ccc");
  const JobResult r = fx.runner.run(word_count_spec({"/in/0", "/in/1"}));
  EXPECT_EQ(r.shuffle_local_bytes + r.shuffle_remote_bytes, r.shuffle_bytes);
  // Both local and remote pairs exist in this job (keys 1..4 over 3
  // partitions on 4 nodes), so the old all-remote accounting would differ.
  EXPECT_GT(r.shuffle_local_bytes, 0u);
  EXPECT_GT(r.shuffle_remote_bytes, 0u);
  EXPECT_EQ(fx.metrics.value("shuffle_local_bytes"), r.shuffle_local_bytes);
  EXPECT_EQ(fx.metrics.value("shuffle_remote_bytes"), r.shuffle_remote_bytes);
}

// A mapper with a large, known flop footprint: speculation tests compare
// exact I/O totals with and without backups.
class FlopsMapper : public Mapper {
 public:
  void map(std::int64_t, const std::string&, TaskContext& ctx) override {
    IoStats flops;
    flops.mults = 2'000'000'000;
    ctx.add_flops(flops);
  }
};

JobSpec flops_spec(std::vector<std::string> inputs) {
  JobSpec spec;
  spec.name = "flops";
  spec.input_files = std::move(inputs);
  spec.mapper_factory = [] { return std::make_unique<FlopsMapper>(); };
  return spec;
}

TEST(Runtime, SpeculativeBackupsAreChargedToJobIo) {
  // Seed 13 + 0.6 variance gives node speeds {1.00, 0.69, 1.34, 1.56}: the
  // map task on node 1 straggles past 1.2x median and the idle fast node
  // launches a backup. That backup's re-done reads and flops must appear in
  // JobResult::io, else Table 1/2 accounting understates work.
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.6;
  m.speculative_execution = true;
  m.speculative_threshold = 1.2;

  const auto run_once = [](CostModel model, bool speculation) {
    model.speculative_execution = speculation;
    MetricsRegistry metrics;
    Cluster cluster(4, model, /*seed=*/13);
    dfs::Dfs fs(4, dfs::DfsConfig{}, &metrics);
    ThreadPool pool(4);
    JobRunner runner(&cluster, &fs, &pool, nullptr, &metrics);
    for (int i = 0; i < 3; ++i)
      fs.write_text("/in/" + std::to_string(i), "x");
    return runner.run(flops_spec({"/in/0", "/in/1", "/in/2"}));
  };

  const JobResult with = run_once(m, true);
  const JobResult without = run_once(m, false);
  ASSERT_GE(with.backups_run, 1);
  EXPECT_EQ(without.backups_run, 0);
  // Exactly the backups' footprint more: re-read input, re-done flops.
  EXPECT_EQ(with.io.mults,
            without.io.mults +
                static_cast<std::uint64_t>(with.backups_run) * 2'000'000'000u);
  EXPECT_GT(with.io.bytes_read, without.io.bytes_read);
  EXPECT_EQ(with.io.bytes_written, without.io.bytes_written);  // no commit
  EXPECT_EQ(with.speculation_io.mults,
            static_cast<std::uint64_t>(with.backups_run) * 2'000'000'000u);
  // The backup also shows up in the trace and wins over the straggler.
  EXPECT_LT(with.map_phase_seconds, without.map_phase_seconds);
  bool saw_backup = false;
  for (const TaskTraceEvent& e : with.map_trace) saw_backup |= e.backup;
  EXPECT_TRUE(saw_backup);
}

TEST(Runtime, TracesCoverEveryAttempt) {
  RuntimeFixture fx(4);
  for (int i = 0; i < 4; ++i)
    { const std::string n = std::to_string(i); fx.fs.write_text("/in/" + n, "w" + n); }
  fx.failures.add_rule(FailureRule{"wordcount", 2, 0, true});
  const JobResult r = fx.runner.run(
      word_count_spec({"/in/0", "/in/1", "/in/2", "/in/3"}));
  // 4 maps + 1 retry; 3 reduces.
  EXPECT_EQ(r.map_trace.size(), 5u);
  EXPECT_EQ(r.reduce_trace.size(), 3u);
  int failed_events = 0;
  for (const TaskTraceEvent& e : r.map_trace) failed_events += e.failed;
  EXPECT_EQ(failed_events, 1);
}

TEST(Runtime, MissingInputIsJobError) {
  RuntimeFixture fx(2);
  JobSpec spec = word_count_spec({"/does/not/exist"});
  EXPECT_THROW(fx.runner.run(spec), JobError);
}

TEST(Runtime, EmptyInputListRejected) {
  RuntimeFixture fx(2);
  JobSpec spec = word_count_spec({});
  EXPECT_THROW(fx.runner.run(spec), InvalidArgument);
}

// ---- pipeline -----------------------------------------------------------------

TEST(Pipeline, AccumulatesAcrossJobs) {
  RuntimeFixture fx(2);
  fx.fs.write_text("/in/0", "one two");
  Pipeline pipeline(&fx.runner);
  pipeline.run(word_count_spec({"/in/0"}));
  fx.fs.write_text("/in/1", "three");
  JobSpec second = word_count_spec({"/in/1"});
  second.name = "wordcount2";
  // The /out files from job 1 collide; write elsewhere.
  second.reducer_factory = [] {
    class R : public Reducer {
      void reduce(std::int64_t key, const std::vector<std::string>& values,
                  TaskContext& ctx) override {
        ctx.fs().write_text("/out2/len." + std::to_string(key),
                            std::to_string(values.size()), &ctx.io());
      }
    };
    return std::make_unique<R>();
  };
  pipeline.run(second);

  IoStats master;
  master.mults = 1'000'000;
  pipeline.add_master_work(master);

  EXPECT_EQ(pipeline.job_count(), 2);
  EXPECT_GT(pipeline.master_seconds(), 0.0);
  EXPECT_NEAR(pipeline.total_sim_seconds(),
              pipeline.jobs()[0].sim_seconds + pipeline.jobs()[1].sim_seconds +
                  pipeline.master_seconds(),
              1e-12);
  // Jobs are placed on the pipeline's timeline back to back.
  EXPECT_EQ(pipeline.jobs()[0].start_seconds, 0.0);
  EXPECT_NEAR(pipeline.jobs()[1].start_seconds,
              pipeline.jobs()[0].sim_seconds, 1e-12);
}

// ---- trace export -----------------------------------------------------------

TEST(TraceExport, RunReportFromPipelineJobs) {
  RuntimeFixture fx(4);
  for (int i = 0; i < 4; ++i)
    { const std::string n = std::to_string(i); fx.fs.write_text("/in/" + n, "w" + n); }
  fx.failures.add_rule(FailureRule{"wordcount", 1, 0, true});
  Pipeline pipeline(&fx.runner);
  pipeline.run(word_count_spec({"/in/0", "/in/1", "/in/2", "/in/3"}));

  const RunReport report =
      build_run_report(pipeline.jobs(), fx.cluster, &fx.metrics);
  EXPECT_EQ(report.jobs, 1);
  EXPECT_EQ(report.failures_recovered, 1);
  EXPECT_EQ(report.total_slots, fx.cluster.total_slots());
  ASSERT_EQ(report.phases.size(), 2u);  // map + reduce
  EXPECT_EQ(report.phases[0].phase, "map");
  EXPECT_EQ(report.phases[1].phase, "reduce");
  // Map phase starts after the job launch overhead; reduce after the map.
  EXPECT_NEAR(report.phases[0].start,
              fx.cluster.cost_model().job_launch_seconds, 1e-9);
  EXPECT_NEAR(report.phases[1].start,
              report.phases[0].start + report.phases[0].duration, 1e-9);
  ASSERT_EQ(report.phase_reports.size(), 2u);
  EXPECT_EQ(report.phase_reports[0].failures, 1);
  ASSERT_EQ(report.failure_timeline.size(), 1u);
  EXPECT_GT(report.failure_timeline[0].retry_start,
            report.failure_timeline[0].failed_at - 1e-12);
  // DFS totals came through the metrics registry.
  EXPECT_GT(report.dfs_io.bytes_written, 0u);
  EXPECT_EQ(report.counters.at("jobs"), 1u);
  // Both export shapes serialize.
  EXPECT_FALSE(run_report_json(report).empty());
  EXPECT_FALSE(chrome_trace_json(report).empty());
}

}  // namespace
}  // namespace mri::mr
