// The MapReduce runtime exercised as a general-purpose system: a word-count
// style job, shuffle semantics, scheduling/failure simulation, pipelines.
#include <gtest/gtest.h>

#include <sstream>

#include "mapreduce/pipeline.hpp"
#include "mapreduce/runtime.hpp"
#include "mapreduce/scheduler.hpp"
#include "mapreduce/shuffle.hpp"

namespace mri::mr {
namespace {

// ---- shuffle ----------------------------------------------------------------

TEST(Shuffle, PartitionsByKeyMod) {
  std::vector<std::vector<KeyValue>> outputs(2);
  outputs[0] = {{0, "a"}, {1, "b"}, {2, "c"}};
  outputs[1] = {{1, "d"}};
  const ShuffleResult r = shuffle(std::move(outputs), 2, nullptr);
  ASSERT_EQ(r.partitions.size(), 2u);
  EXPECT_EQ(r.partitions[0].at(0), (std::vector<std::string>{"a"}));
  EXPECT_EQ(r.partitions[0].at(2), (std::vector<std::string>{"c"}));
  EXPECT_EQ(r.partitions[1].at(1), (std::vector<std::string>{"b", "d"}));
}

TEST(Shuffle, NegativeKeysLandInRange) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{-3, "x"}};
  const ShuffleResult r = shuffle(std::move(outputs), 2, nullptr);
  EXPECT_EQ(r.partitions[1].at(-3).size(), 1u);
}

TEST(Shuffle, CustomPartitioner) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{100, "x"}, {200, "y"}};
  const ShuffleResult r = shuffle(
      std::move(outputs), 3, [](std::int64_t, int) { return 2; });
  EXPECT_TRUE(r.partitions[0].empty());
  EXPECT_EQ(r.partitions[2].size(), 2u);
}

TEST(Shuffle, CountsBytes) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{1, "abcd"}};
  const ShuffleResult r = shuffle(std::move(outputs), 1, nullptr);
  EXPECT_EQ(r.total_bytes, 8u + 4u);
}

TEST(Shuffle, BadPartitionerCaught) {
  std::vector<std::vector<KeyValue>> outputs(1);
  outputs[0] = {{1, "x"}};
  EXPECT_THROW(
      shuffle(std::move(outputs), 2, [](std::int64_t, int) { return 7; }),
      Error);
}

// ---- scheduler -----------------------------------------------------------------

Attempt ok_attempt(std::uint64_t flops) {
  Attempt a;
  a.io.mults = flops;
  return a;
}

TEST(Scheduler, SingleWave) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  Cluster cluster(4, m);
  // 4 equal tasks on 4 nodes: duration = one task.
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(2'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 2.0, 1e-9);
  EXPECT_EQ(s.attempts_run, 4);
  EXPECT_EQ(s.nodes_lost, 0);
}

TEST(Scheduler, TwoWaves) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  Cluster cluster(2, m);
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 2.0, 1e-9);  // 4 tasks / 2 slots = 2 waves
}

TEST(Scheduler, FailureSerializesRetry) {
  // The §7.4 scenario: all slots busy; one task fails halfway and loses its
  // node; the retry starts only when another task finishes.
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  Cluster cluster(2, m);
  std::vector<std::vector<Attempt>> tasks(2);
  tasks[0] = {ok_attempt(1'000'000'000)};  // 1 s, succeeds
  Attempt ghost = ok_attempt(500'000'000);  // dies at 0.5 s
  ghost.failed = true;
  tasks[1] = {ghost, ok_attempt(1'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  // Node lost at 0.5 s; retry waits for the other node (free at 1.0 s) and
  // runs 1 s: total 2.0 s instead of 1.0 s.
  EXPECT_NEAR(s.duration, 2.0, 1e-9);
  EXPECT_EQ(s.nodes_lost, 1);
  EXPECT_EQ(s.attempts_run, 3);
}

TEST(Scheduler, SlowNodeStretchesPhase) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.4;
  Cluster cluster(4, m, /*seed=*/123);
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  double slowest = 1.0;
  for (int i = 0; i < 4; ++i)
    slowest = std::max(slowest, 1.0 / cluster.speed_factor(i));
  EXPECT_NEAR(s.duration, slowest, 1e-9);
}

TEST(Scheduler, EmptyPhase) {
  Cluster cluster(2, CostModel{});
  EXPECT_EQ(schedule_phase(cluster, {}).duration, 0.0);
}

CostModel spec_model(bool speculation, double variance) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = variance;
  m.speculative_execution = speculation;
  m.speculative_threshold = 1.2;
  return m;
}

TEST(Scheduler, SpeculationCannotRescueBigWork) {
  // A task with 10x the *work* (not a slow node) gains nothing from a
  // backup: the backup needs the same 10 s.
  Cluster cluster(4, spec_model(true, 0.0));
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  tasks[3] = {ok_attempt(10'000'000'000)};
  const PhaseSchedule s = schedule_phase(cluster, tasks);
  EXPECT_NEAR(s.duration, 10.0, 1e-9);
}

TEST(Scheduler, SpeculationRescuesSlowNodeStraggler) {
  // Same work everywhere, but one node is much slower; the backup on a
  // fast idle node beats the straggler.
  // Seed 13 gives speeds {1.00, 0.69, 1.34, 1.56}: the task on node 1 runs
  // 2.9 s vs a 2.0 s median; the idle 1.56x node backs it up from 1.49 s
  // and wins at ~2.77 s.
  Cluster with_spec(4, spec_model(true, 0.6), /*seed=*/13);
  Cluster without_spec(4, spec_model(false, 0.6), /*seed=*/13);
  // Fewer tasks than slots so idle capacity exists for backups.
  std::vector<std::vector<Attempt>> tasks(3, {ok_attempt(2'000'000'000)});
  const PhaseSchedule a = schedule_phase(with_spec, tasks);
  const PhaseSchedule b = schedule_phase(without_spec, tasks);
  EXPECT_LE(a.duration, b.duration);
  // With a 0.6 spread the slowest node is ~2.5x nominal; a backup should
  // actually have been launched and won.
  EXPECT_GE(a.backups_run, 1);
  EXPECT_LT(a.duration, b.duration);
}

TEST(Scheduler, SpeculationOffByDefault) {
  CostModel m;
  Cluster cluster(4, m);
  std::vector<std::vector<Attempt>> tasks(4, {ok_attempt(1'000'000'000)});
  EXPECT_EQ(schedule_phase(cluster, tasks).backups_run, 0);
}

// ---- runtime: a classic word-count job ------------------------------------------

class WordCountMapper : public Mapper {
 public:
  void map(std::int64_t, const std::string& value, TaskContext& ctx) override {
    std::istringstream in(value);
    std::string word;
    while (in >> word) {
      // Key by word length (integer keys); value is the word itself.
      ctx.emit(static_cast<std::int64_t>(word.size()), word);
    }
  }
};

class CountReducer : public Reducer {
 public:
  void reduce(std::int64_t key, const std::vector<std::string>& values,
              TaskContext& ctx) override {
    ctx.fs().write_text("/out/len." + std::to_string(key),
                        std::to_string(values.size()), &ctx.io());
  }
};

struct RuntimeFixture {
  RuntimeFixture(int nodes)
      : cluster(nodes, CostModel::ec2_medium()),
        fs(nodes, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, &failures, &metrics) {}

  MetricsRegistry metrics;
  FailureInjector failures;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  JobRunner runner;
};

JobSpec word_count_spec(std::vector<std::string> inputs) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_files = std::move(inputs);
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = 3;
  return spec;
}

TEST(Runtime, WordCountEndToEnd) {
  RuntimeFixture fx(4);
  fx.fs.write_text("/in/0", "a bb ccc a bb");
  fx.fs.write_text("/in/1", "dddd a ccc");
  const JobResult r = fx.runner.run(word_count_spec({"/in/0", "/in/1"}));

  EXPECT_EQ(fx.fs.read_text("/out/len.1"), "3");  // a a a
  EXPECT_EQ(fx.fs.read_text("/out/len.2"), "2");  // bb bb
  EXPECT_EQ(fx.fs.read_text("/out/len.3"), "2");  // ccc ccc
  EXPECT_EQ(fx.fs.read_text("/out/len.4"), "1");  // dddd
  EXPECT_EQ(r.map_tasks, 2);
  EXPECT_EQ(r.reduce_tasks, 3);
  EXPECT_GT(r.sim_seconds,
            fx.cluster.cost_model().job_launch_seconds);  // launch charged
  EXPECT_GT(r.shuffle_bytes, 0u);
  EXPECT_EQ(fx.metrics.value("jobs"), 1u);
  EXPECT_EQ(fx.metrics.value("map_tasks"), 2u);
}

TEST(Runtime, MapOnlyJob) {
  RuntimeFixture fx(2);
  fx.fs.write_text("/in/0", "payload");
  JobSpec spec;
  spec.name = "map-only";
  spec.input_files = {"/in/0"};
  spec.mapper_factory = [] {
    class M : public Mapper {
      void map(std::int64_t, const std::string& v, TaskContext& ctx) override {
        ctx.fs().write_text("/out/copy", v, &ctx.io());
      }
    };
    return std::make_unique<M>();
  };
  const JobResult r = fx.runner.run(spec);
  EXPECT_EQ(fx.fs.read_text("/out/copy"), "payload");
  EXPECT_EQ(r.reduce_tasks, 0);
  EXPECT_EQ(r.reduce_phase_seconds, 0.0);
}

TEST(Runtime, TaskExceptionBecomesJobError) {
  RuntimeFixture fx(2);
  fx.fs.write_text("/in/0", "x");
  JobSpec spec;
  spec.name = "broken";
  spec.input_files = {"/in/0"};
  spec.mapper_factory = [] {
    class M : public Mapper {
      void map(std::int64_t, const std::string&, TaskContext&) override {
        throw NumericalError("singular");
      }
    };
    return std::make_unique<M>();
  };
  EXPECT_THROW(fx.runner.run(spec), JobError);
}

TEST(Runtime, InjectedFailureIsRecoveredAndCharged) {
  RuntimeFixture fx(4);
  for (int i = 0; i < 4; ++i)
    fx.fs.write_text("/in/" + std::to_string(i), "w" + std::to_string(i));
  fx.failures.add_rule(FailureRule{"wordcount", 2, 0, true});

  const JobResult with_failure = fx.runner.run(word_count_spec(
      {"/in/0", "/in/1", "/in/2", "/in/3"}));
  EXPECT_EQ(with_failure.failures_recovered, 1);

  RuntimeFixture clean(4);
  for (int i = 0; i < 4; ++i)
    clean.fs.write_text("/in/" + std::to_string(i), "w" + std::to_string(i));
  const JobResult no_failure = clean.runner.run(word_count_spec(
      {"/in/0", "/in/1", "/in/2", "/in/3"}));
  EXPECT_EQ(no_failure.failures_recovered, 0);
  EXPECT_GT(with_failure.sim_seconds, no_failure.sim_seconds);
}

TEST(Runtime, MissingInputIsJobError) {
  RuntimeFixture fx(2);
  JobSpec spec = word_count_spec({"/does/not/exist"});
  EXPECT_THROW(fx.runner.run(spec), JobError);
}

TEST(Runtime, EmptyInputListRejected) {
  RuntimeFixture fx(2);
  JobSpec spec = word_count_spec({});
  EXPECT_THROW(fx.runner.run(spec), InvalidArgument);
}

// ---- pipeline -----------------------------------------------------------------

TEST(Pipeline, AccumulatesAcrossJobs) {
  RuntimeFixture fx(2);
  fx.fs.write_text("/in/0", "one two");
  Pipeline pipeline(&fx.runner);
  pipeline.run(word_count_spec({"/in/0"}));
  fx.fs.write_text("/in/1", "three");
  JobSpec second = word_count_spec({"/in/1"});
  second.name = "wordcount2";
  // The /out files from job 1 collide; write elsewhere.
  second.reducer_factory = [] {
    class R : public Reducer {
      void reduce(std::int64_t key, const std::vector<std::string>& values,
                  TaskContext& ctx) override {
        ctx.fs().write_text("/out2/len." + std::to_string(key),
                            std::to_string(values.size()), &ctx.io());
      }
    };
    return std::make_unique<R>();
  };
  pipeline.run(second);

  IoStats master;
  master.mults = 1'000'000;
  pipeline.add_master_work(master);

  EXPECT_EQ(pipeline.job_count(), 2);
  EXPECT_GT(pipeline.master_seconds(), 0.0);
  EXPECT_NEAR(pipeline.total_sim_seconds(),
              pipeline.jobs()[0].sim_seconds + pipeline.jobs()[1].sim_seconds +
                  pipeline.master_seconds(),
              1e-12);
}

}  // namespace
}  // namespace mri::mr
