// The DAG job executor: submit/wait/run_all semantics, the shared slot
// pool, sequential-equals-pipeline equivalence, determinism under
// concurrency, and the default floor-mod partitioner.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/pipeline.hpp"
#include "mapreduce/runtime.hpp"
#include "mapreduce/shuffle.hpp"
#include "mapreduce/trace_export.hpp"

namespace mri::mr {
namespace {

// ---- floor-mod partitioner --------------------------------------------------

TEST(FloorModPartition, PositiveKeys) {
  EXPECT_EQ(floor_mod_partition(0, 3), 0);
  EXPECT_EQ(floor_mod_partition(5, 3), 2);
  EXPECT_EQ(floor_mod_partition(6, 3), 0);
}

TEST(FloorModPartition, NegativeKeysLandInRange) {
  EXPECT_EQ(floor_mod_partition(-1, 3), 2);
  EXPECT_EQ(floor_mod_partition(-3, 3), 0);
  EXPECT_EQ(floor_mod_partition(-4, 3), 2);
}

TEST(FloorModPartition, Int64MinDoesNotOverflow) {
  // -2^63 ≡ 1 (mod 3); the naive abs()-based fold would be UB here.
  EXPECT_EQ(floor_mod_partition(INT64_MIN, 3), 1);
  EXPECT_EQ(floor_mod_partition(INT64_MIN, 1), 0);
  EXPECT_GE(floor_mod_partition(INT64_MIN, 7), 0);
  EXPECT_LT(floor_mod_partition(INT64_MIN, 7), 7);
}

TEST(FloorModPartition, RejectsNonPositivePartitionCount) {
  EXPECT_THROW(floor_mod_partition(1, 0), InvalidArgument);
  EXPECT_THROW(floor_mod_partition(1, -2), InvalidArgument);
}

// ---- fixtures ---------------------------------------------------------------

// Deterministic arithmetic: unit node speeds, no overheads, so task times
// and makespans are exact round numbers.
CostModel flops_model() {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  m.job_launch_seconds = 0.0;
  return m;
}

struct GraphFixture {
  explicit GraphFixture(int nodes, CostModel model = flops_model())
      : cluster(nodes, model),
        fs(nodes, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, nullptr, &metrics) {
    for (int i = 0; i < nodes; ++i)
      { const std::string n = std::to_string(i); fs.write_text("/in/" + n, "x" + n); }
  }

  std::vector<std::string> inputs(int count) const {
    std::vector<std::string> files;
    for (int i = 0; i < count; ++i)
      files.push_back("/in/" + std::to_string(i));
    return files;
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  JobRunner runner;
};

// A map-only job whose every task burns `flops` multiplications: 2e9 flops
// at 1e9 flops/s = 2 s per task.
JobSpec flops_job(std::string name, std::vector<std::string> inputs,
                  std::uint64_t flops = 2'000'000'000) {
  class FlopsMapper : public Mapper {
   public:
    explicit FlopsMapper(std::uint64_t f) : f_(f) {}
    void map(std::int64_t, const std::string&, TaskContext& ctx) override {
      IoStats io;
      io.mults = f_;
      ctx.add_flops(io);
    }

   private:
    std::uint64_t f_;
  };
  JobSpec spec;
  spec.name = std::move(name);
  spec.input_files = std::move(inputs);
  spec.mapper_factory = [flops] { return std::make_unique<FlopsMapper>(flops); };
  return spec;
}

// A full map+shuffle+reduce job: keys by input length, counts per key, so
// determinism checks cover the shuffle and reduce paths too.
JobSpec count_job(std::string name, std::vector<std::string> inputs,
                  std::string out_dir) {
  class LenMapper : public Mapper {
   public:
    void map(std::int64_t, const std::string& value,
             TaskContext& ctx) override {
      ctx.emit(static_cast<std::int64_t>(value.size()), value);
    }
  };
  class CountReducer : public Reducer {
   public:
    explicit CountReducer(std::string dir) : dir_(std::move(dir)) {}
    void reduce(std::int64_t key, const std::vector<std::string>& values,
                TaskContext& ctx) override {
      ctx.fs().write_text(dir_ + "/len." + std::to_string(key),
                          std::to_string(values.size()), &ctx.io());
    }

   private:
    std::string dir_;
  };
  JobSpec spec;
  spec.name = std::move(name);
  spec.input_files = std::move(inputs);
  spec.num_reduce_tasks = 2;
  spec.mapper_factory = [] { return std::make_unique<LenMapper>(); };
  spec.reducer_factory = [out_dir] {
    return std::make_unique<CountReducer>(out_dir);
  };
  return spec;
}

// ---- sequential equivalence -------------------------------------------------

TEST(JobGraph, SequentialChainIsBitIdenticalToRun) {
  // The same three jobs (plus master work between them) through the old
  // synchronous API and through an explicit dependency chain must produce
  // byte-identical accounting — makespan, per-job starts, the run report.
  const auto drive_run = [](GraphFixture& fx) {
    Pipeline p(&fx.runner);
    p.run(count_job("count", fx.inputs(4), "/out1"));
    IoStats master;
    master.mults = 1'000'000'000;
    p.add_master_work(master);
    p.run(flops_job("flops-a", fx.inputs(2)));
    p.run(flops_job("flops-b", fx.inputs(3)));
    return p.jobs();
  };
  const auto drive_dag = [](GraphFixture& fx) {
    Pipeline p(&fx.runner);
    const JobHandle a = p.submit(count_job("count", fx.inputs(4), "/out1"));
    p.wait(a);
    IoStats master;
    master.mults = 1'000'000'000;
    p.add_master_work(master);
    const JobHandle b = p.submit(flops_job("flops-a", fx.inputs(2)), {a});
    p.wait(b);
    const JobHandle c = p.submit(flops_job("flops-b", fx.inputs(3)), {b});
    p.wait(c);
    return p.jobs();
  };

  GraphFixture fx1(4), fx2(4);
  const std::vector<JobResult> run_jobs = drive_run(fx1);
  const std::vector<JobResult> dag_jobs = drive_dag(fx2);

  ASSERT_EQ(run_jobs.size(), dag_jobs.size());
  for (std::size_t i = 0; i < run_jobs.size(); ++i) {
    EXPECT_EQ(run_jobs[i].start_seconds, dag_jobs[i].start_seconds);  // exact
    EXPECT_EQ(run_jobs[i].sim_seconds, dag_jobs[i].sim_seconds);      // exact
  }
  const std::string json1 = run_report_json(
      build_run_report(run_jobs, fx1.cluster, &fx1.metrics));
  const std::string json2 = run_report_json(
      build_run_report(dag_jobs, fx2.cluster, &fx2.metrics));
  EXPECT_EQ(json1, json2);
}

TEST(JobGraph, SequentialMakespanIsSumOfJobs) {
  GraphFixture fx(4);
  Pipeline p(&fx.runner);
  const JobHandle a = p.submit(flops_job("a", fx.inputs(4)));
  p.wait(a);
  const JobHandle b = p.submit(flops_job("b", fx.inputs(4)), {a});
  p.wait(b);
  EXPECT_EQ(p.total_sim_seconds(),
            p.jobs()[0].sim_seconds + p.jobs()[1].sim_seconds);
  EXPECT_EQ(p.jobs()[0].start_seconds, 0.0);
  EXPECT_EQ(p.jobs()[1].start_seconds, p.jobs()[0].sim_seconds);
}

TEST(JobGraph, StartSecondsAreMonotone) {
  GraphFixture fx(2);
  Pipeline p(&fx.runner);
  JobHandle prev;
  for (int i = 0; i < 4; ++i) {
    prev = p.submit(flops_job("chain-" + std::to_string(i), fx.inputs(2)),
                    {prev});
  }
  p.run_all();
  const std::vector<JobResult>& jobs = p.jobs();
  ASSERT_EQ(jobs.size(), 4u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].start_seconds,
              jobs[i - 1].start_seconds + jobs[i - 1].sim_seconds - 1e-12);
  }
}

// ---- concurrency ------------------------------------------------------------

TEST(JobGraph, IndependentJobsOverlapOnTheSlotPool) {
  // Two 2-task jobs on a 4-slot cluster: concurrently eligible, they lease
  // disjoint slots and the makespan is one job's time, not two.
  GraphFixture fx(4);
  Pipeline p(&fx.runner);
  const JobHandle a = p.submit(flops_job("a", fx.inputs(2)));
  const JobHandle b = p.submit(flops_job("b", fx.inputs(2)));
  p.run_all();
  const double sum = p.jobs()[0].sim_seconds + p.jobs()[1].sim_seconds;
  EXPECT_EQ(p.wait(a).start_seconds, 0.0);
  EXPECT_EQ(p.wait(b).start_seconds, 0.0);
  EXPECT_NEAR(p.total_sim_seconds(), 2.0, 1e-3);
  EXPECT_LT(p.total_sim_seconds(), sum - 1.0);
}

TEST(JobGraph, ContendedJobsQueueOnBusySlots) {
  // Two 2-task jobs on a 2-slot cluster: eligible together but there is
  // nothing to lease, so the second job's tasks wait for the first's slots
  // and the makespan equals the serial sum.
  GraphFixture fx(2);
  Pipeline p(&fx.runner);
  p.submit(flops_job("a", fx.inputs(2)));
  p.submit(flops_job("b", fx.inputs(2)));
  p.run_all();
  EXPECT_NEAR(p.total_sim_seconds(), 4.0, 1e-3);
}

TEST(JobGraph, ConcurrentRunsAreDeterministic) {
  // Same DAG, two fresh clusters: identical makespan bits, identical
  // per-job results, identical run-report JSON — regardless of the real
  // (wall-clock) interleaving of the worker thread.
  const auto drive = [](GraphFixture& fx) {
    Pipeline p(&fx.runner);
    const JobHandle a = p.submit(count_job("count-a", fx.inputs(3), "/outa"));
    const JobHandle b = p.submit(count_job("count-b", fx.inputs(4), "/outb"));
    const JobHandle c = p.submit(flops_job("fan-in", fx.inputs(2)), {a, b});
    p.run_all();
    (void)c;
    struct Out {
      double sim;
      std::string json;
    } out;
    out.sim = p.total_sim_seconds();
    out.json = run_report_json(
        build_run_report(p.jobs(), fx.cluster, &fx.metrics, p.master_spans()));
    return out;
  };
  GraphFixture fx1(4), fx2(4);
  const auto r1 = drive(fx1);
  const auto r2 = drive(fx2);
  EXPECT_EQ(r1.sim, r2.sim);  // exact, not approximate
  EXPECT_EQ(r1.json, r2.json);
}

TEST(JobGraph, DiamondDependenciesScheduleCorrectly) {
  // a -> {b, c} -> d. b and c overlap after a; d waits for both.
  GraphFixture fx(4);
  Pipeline p(&fx.runner);
  const JobHandle a = p.submit(flops_job("a", fx.inputs(2)));
  const JobHandle b = p.submit(flops_job("b", fx.inputs(2)), {a});
  const JobHandle c = p.submit(flops_job("c", fx.inputs(2)), {a});
  const JobHandle d = p.submit(flops_job("d", fx.inputs(2)), {b, c});
  p.run_all();

  const JobResult& ra = p.wait(a);
  const JobResult& rb = p.wait(b);
  const JobResult& rc = p.wait(c);
  const JobResult& rd = p.wait(d);
  const double a_end = ra.start_seconds + ra.sim_seconds;
  EXPECT_EQ(ra.start_seconds, 0.0);
  EXPECT_EQ(rb.start_seconds, a_end);
  EXPECT_EQ(rc.start_seconds, a_end);  // overlaps b, not serialized after it
  EXPECT_GE(rd.start_seconds, rb.start_seconds + rb.sim_seconds - 1e-12);
  EXPECT_GE(rd.start_seconds, rc.start_seconds + rc.sim_seconds - 1e-12);
  // 3 levels of 2 s each, not 4 serial jobs.
  EXPECT_NEAR(p.total_sim_seconds(), 6.0, 1e-3);
  double serial_sum = 0.0;
  for (const JobResult& j : p.jobs()) serial_sum += j.sim_seconds;
  EXPECT_LT(p.total_sim_seconds(), serial_sum - 1.0);
  EXPECT_EQ(p.job_count(), 4);
}

// ---- master work ------------------------------------------------------------

TEST(JobGraph, MasterWorkRecordsSpansOnTheTimeline) {
  GraphFixture fx(2);
  Pipeline p(&fx.runner);
  const JobHandle a = p.submit(flops_job("a", fx.inputs(2)));
  p.wait(a);
  IoStats master;
  master.mults = 1'000'000'000;
  p.add_master_work(master);
  const JobHandle b = p.submit(flops_job("b", fx.inputs(2)), {a});
  p.wait(b);

  ASSERT_EQ(p.master_spans().size(), 1u);
  const MasterSpan& span = p.master_spans()[0];
  const JobResult& ra = p.wait(a);
  EXPECT_EQ(span.start, ra.start_seconds + ra.sim_seconds);
  EXPECT_EQ(span.end - span.start, p.master_seconds());
  EXPECT_EQ(span.io.mults, master.mults);
  // The next job starts only after the master's gap.
  EXPECT_EQ(p.wait(b).start_seconds, span.end);
  EXPECT_EQ(p.total_sim_seconds(),
            p.wait(b).start_seconds + p.wait(b).sim_seconds);
}

// ---- errors and edge cases --------------------------------------------------

TEST(JobGraph, WaitRethrowsTaskErrors) {
  GraphFixture fx(2);
  Pipeline p(&fx.runner);
  JobSpec broken;
  broken.name = "broken";
  broken.input_files = fx.inputs(1);
  broken.mapper_factory = [] {
    class M : public Mapper {
      void map(std::int64_t, const std::string&, TaskContext&) override {
        throw NumericalError("singular");
      }
    };
    return std::make_unique<M>();
  };
  const JobHandle h = p.submit(std::move(broken));
  EXPECT_THROW(p.wait(h), JobError);
}

TEST(JobGraph, InvalidHandleDepsAreIgnored) {
  // A default-constructed handle means "no dependency" — the LU driver
  // passes one for the first job in its chain.
  GraphFixture fx(2);
  Pipeline p(&fx.runner);
  const JobHandle h = p.submit(flops_job("a", fx.inputs(2)), {JobHandle{}});
  EXPECT_EQ(p.wait(h).start_seconds, 0.0);
}

// ---- negative keys end to end -----------------------------------------------

TEST(JobGraph, NegativeKeysFlowThroughDefaultPartitioner) {
  // Mapper emits negative keys; the default floor-mod partitioner must
  // route them to valid reduce tasks and the reducers must see them.
  GraphFixture fx(4);
  class NegMapper : public Mapper {
   public:
    void map(std::int64_t, const std::string& value,
             TaskContext& ctx) override {
      ctx.emit(-static_cast<std::int64_t>(value.size()), value);
    }
  };
  class EchoReducer : public Reducer {
   public:
    void reduce(std::int64_t key, const std::vector<std::string>& values,
                TaskContext& ctx) override {
      EXPECT_LT(key, 0);
      ctx.fs().write_text("/neg/key." + std::to_string(key),
                          std::to_string(values.size()), &ctx.io());
    }
  };
  JobSpec spec;
  spec.name = "neg-keys";
  spec.input_files = fx.inputs(4);  // values x0..x3, all length 2
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [] { return std::make_unique<NegMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<EchoReducer>(); };
  Pipeline p(&fx.runner);
  p.run(std::move(spec));
  EXPECT_EQ(fx.fs.read_text("/neg/key.-2"), "4");
}

// ---- teardown of submitted-but-never-waited jobs ----------------------------

// A job whose map phase throws (its input file does not exist).
JobSpec failing_job(std::string name) {
  JobSpec spec = flops_job(std::move(name), {"/no/such/file"});
  return spec;
}

TEST(JobGraphTeardown, AbandonedJobsStillExecute) {
  // Destroying the graph with submitted-but-never-wait()ed jobs must drain
  // them, not discard them: their DFS side effects exist afterwards.
  GraphFixture fx(4);
  {
    JobGraph g(&fx.runner);
    g.submit(count_job("abandoned", fx.inputs(4), "/drain"));
    // No wait(), no run_all(): the destructor joins the worker.
  }
  EXPECT_EQ(fx.fs.read_text("/drain/len.2"), "4");
}

TEST(JobGraphTeardown, AbandonedErrorReachesHandler) {
  GraphFixture fx(2);
  std::vector<std::string> reported;
  std::string message;
  {
    JobGraphOptions options;
    options.abandoned_error_handler = [&](const std::string& job,
                                          std::exception_ptr error) {
      reported.push_back(job);
      try {
        std::rethrow_exception(error);
      } catch (const JobError& e) {
        message = e.what();
      }
    };
    JobGraph g(&fx.runner, std::move(options));
    g.submit(failing_job("doomed"));
  }
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], "doomed");
  EXPECT_NE(message.find("doomed"), std::string::npos);
}

TEST(JobGraphTeardown, WaitedErrorIsNotReportedAgain) {
  GraphFixture fx(2);
  int reported = 0;
  {
    JobGraphOptions options;
    options.abandoned_error_handler = [&](const std::string&,
                                          std::exception_ptr) { ++reported; };
    JobGraph g(&fx.runner, std::move(options));
    const JobHandle h = g.submit(failing_job("seen"));
    EXPECT_THROW(g.wait(h), JobError);
  }
  EXPECT_EQ(reported, 0) << "wait() consumed the error; the teardown "
                            "handler must not double-report it";
}

TEST(JobGraphTeardown, MixedOutcomesReportOnlyUnconsumedErrors) {
  GraphFixture fx(4);
  std::vector<std::string> reported;
  {
    JobGraphOptions options;
    options.abandoned_error_handler = [&](const std::string& job,
                                          std::exception_ptr) {
      reported.push_back(job);
    };
    JobGraph g(&fx.runner, std::move(options));
    const JobHandle ok = g.submit(flops_job("fine", fx.inputs(2)));
    g.submit(failing_job("lost-1"));
    g.submit(failing_job("lost-2"));
    g.wait(ok);  // succeeds; the two failures are never consumed
  }
  ASSERT_EQ(reported.size(), 2u);
  EXPECT_EQ(reported[0], "lost-1");
  EXPECT_EQ(reported[1], "lost-2");
}

// ---- shared pool across graphs ----------------------------------------------

TEST(JobGraphSharedPool, PoolSizeMismatchThrowsOnLease) {
  // Satellite: the runner re-validates the pool against the cluster on
  // every lease instead of trusting a stale snapshot.
  GraphFixture fx(4);  // 4 nodes x 1 slot
  SlotPool wrong(fx.cluster.total_slots() + 1);
  JobGraphOptions options;
  options.shared_pool = &wrong;
  JobGraph g(&fx.runner, std::move(options));
  const JobHandle h = g.submit(flops_job("a", fx.inputs(2)));
  EXPECT_THROW(g.wait(h), InvalidArgument);
}

TEST(JobGraphSharedPool, NodeDeathWithTwoConcurrentGraphs) {
  // Two JobGraphs lease one SlotPool while failure injection kills a node
  // under the first graph's map phase. Lease accounting must stay
  // consistent: merged per-slot spans never overlap in absolute time,
  // busy-slot-seconds equal the sum over both graphs' traces, and the
  // combined makespan is the max of the two graphs' finish times.
  MetricsRegistry metrics;
  Cluster cluster(4, flops_model());
  dfs::Dfs fs(4, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  FailureInjector failures;
  failures.add_rule({"g1-job", /*task_index=*/0, /*attempt=*/0,
                     /*map_task=*/true});
  JobRunner runner(&cluster, &fs, &pool, &failures, &metrics);
  for (int i = 0; i < 4; ++i) {
    { const std::string n = std::to_string(i); fs.write_text("/in/" + n, "x" + n); }
  }
  const auto inputs = [&](int count) {
    std::vector<std::string> files;
    for (int i = 0; i < count; ++i) {
      files.push_back("/in/" + std::to_string(i));
    }
    return files;
  };

  SlotPool shared(cluster.total_slots());
  JobGraphOptions o1, o2;
  o1.shared_pool = &shared;
  o2.shared_pool = &shared;
  JobGraph g1(&runner, std::move(o1));
  JobGraph g2(&runner, std::move(o2));
  const JobHandle h1 = g1.submit(flops_job("g1-job", inputs(4)));
  const JobHandle h2 = g2.submit(flops_job("g2-job", inputs(4)));
  const JobResult& r1 = g1.wait(h1);
  // g2's lease at start 0 sees g1's committed occupancy (including the
  // failure's retry serialization) because g1 was placed first.
  const JobResult& r2 = g2.wait(h2);
  EXPECT_EQ(r1.failures_recovered, 1);
  EXPECT_EQ(r2.failures_recovered, 0);

  // Merge both graphs' traces onto the absolute timeline.
  std::vector<JobResult> all = {r1, r2};
  double busy = 0.0;
  std::map<int, std::vector<std::pair<double, double>>> by_slot;
  for (const PhaseTrace& phase : phase_traces(all)) {
    for (const TaskTraceEvent& e : phase.events) {
      busy += e.end - e.start;
      by_slot[e.slot].push_back({phase.start + e.start, phase.start + e.end});
    }
  }
  for (auto& [slot, spans] : by_slot) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].second, spans[i].first + 1e-12)
          << "slot " << slot << " leased to two graphs at once";
    }
  }

  RunReport report = build_run_report(all, cluster, &metrics);
  EXPECT_NEAR(report.busy_slot_seconds, busy, 1e-12);
  EXPECT_NEAR(report.sim_seconds,
              std::max(g1.total_sim_seconds(), g2.total_sim_seconds()),
              1e-12);
  EXPECT_EQ(report.failures_recovered, 1);
}

}  // namespace
}  // namespace mri::mr
