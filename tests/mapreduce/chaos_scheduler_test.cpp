// Node-loss scheduling semantics (§7.4, Hadoop 1.x): dead-on-arrival nodes
// contribute no slots, a mid-phase kill truncates the node's in-flight
// attempts and retries them on survivors after the detection delay, losing
// every slot is an error, and chaos degrades slow subsequent attempts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "mapreduce/scheduler.hpp"

namespace mri::mr {
namespace {

CostModel flat_model(int slots_per_node = 1) {
  CostModel m;
  m.flops_per_second = 1e9;
  m.task_overhead_seconds = 0.0;
  m.failure_detection_seconds = 0.0;
  m.node_speed_variance = 0.0;
  m.slots_per_node = slots_per_node;
  return m;
}

Attempt ok_attempt(std::uint64_t flops) {
  Attempt a;
  a.io.mults = flops;
  return a;
}

// 1e9 flops at 1e9 flops/s = 1.0 simulated second per attempt.
std::vector<std::vector<Attempt>> tasks(int count) {
  return std::vector<std::vector<Attempt>>(
      static_cast<std::size_t>(count), {ok_attempt(1'000'000'000)});
}

TEST(ChaosScheduler, DeadOnArrivalNodeContributesNoSlots) {
  Cluster cluster(2, flat_model());
  const PhaseSchedule clean = schedule_phase(cluster, tasks(4));
  EXPECT_DOUBLE_EQ(clean.duration, 2.0);  // 4 tasks over 2 slots

  PhaseChaos chaos;
  chaos.outages.push_back({/*node=*/1, /*at=*/0.0, /*detect_after=*/0.0});
  const PhaseSchedule degraded =
      schedule_phase(cluster, tasks(4), nullptr, &chaos);
  EXPECT_DOUBLE_EQ(degraded.duration, 4.0);  // 4 tasks over 1 surviving slot
  for (const TaskTraceEvent& e : degraded.trace) {
    EXPECT_NE(e.node, 1) << "an attempt was placed on the dead node";
  }
}

TEST(ChaosScheduler, MidPhaseKillRetriesOnSurvivorsAfterDetection) {
  Cluster cluster(2, flat_model());
  PhaseChaos chaos;
  chaos.outages.push_back({/*node=*/1, /*at=*/0.5, /*detect_after=*/0.25});
  const PhaseSchedule s = schedule_phase(cluster, tasks(2), nullptr, &chaos);

  EXPECT_EQ(s.chaos_attempts_killed, 1);
  bool saw_killed = false, saw_retry = false;
  for (const TaskTraceEvent& e : s.trace) {
    if (e.chaos) {
      saw_killed = true;
      EXPECT_EQ(e.node, 1);
      EXPECT_DOUBLE_EQ(e.end, 0.5) << "killed attempt not truncated at death";
    } else if (e.task == 1) {
      saw_retry = true;
      EXPECT_NE(e.node, 1) << "retry placed on the dead node";
      // Ready at kill + detection (0.75) but node 0's slot is busy with its
      // own task until 1.0 — §7.4's "did not restart until another mapper
      // finished".
      EXPECT_GE(e.start, 1.0 - 1e-12);
    }
  }
  EXPECT_TRUE(saw_killed);
  EXPECT_TRUE(saw_retry);
  EXPECT_DOUBLE_EQ(s.duration, 2.0);
  EXPECT_GT(s.chaos_io.mults, 0u) << "the dead attempt's work is wasted";
}

TEST(ChaosScheduler, EveryNodeDeadThrows) {
  Cluster cluster(2, flat_model());
  PhaseChaos chaos;
  chaos.outages.push_back({0, 0.0, 0.0});
  chaos.outages.push_back({1, 0.0, 0.0});
  EXPECT_THROW(schedule_phase(cluster, tasks(2), nullptr, &chaos), Error);
}

TEST(ChaosScheduler, DegradeSlowsAttemptsStartingAfterIt) {
  Cluster cluster(1, flat_model());
  PhaseChaos chaos;
  chaos.degrades.push_back({/*node=*/0, /*at=*/0.5, /*factor=*/0.5});
  const PhaseSchedule s = schedule_phase(cluster, tasks(2), nullptr, &chaos);
  // Task 0 starts at 0 (full speed, 1 s); task 1 starts at 1.0, slowed to
  // half speed (2 s) — a straggler, not a death.
  EXPECT_DOUBLE_EQ(s.duration, 3.0);
  EXPECT_EQ(s.nodes_lost, 0);
  EXPECT_EQ(s.chaos_attempts_killed, 0);
}

TEST(ChaosScheduler, ChaosScheduleIsDeterministic) {
  Cluster cluster(3, flat_model());
  PhaseChaos chaos;
  chaos.outages.push_back({2, 0.4, 0.3});
  chaos.degrades.push_back({1, 0.2, 0.5});
  const PhaseSchedule a = schedule_phase(cluster, tasks(6), nullptr, &chaos);
  const PhaseSchedule b = schedule_phase(cluster, tasks(6), nullptr, &chaos);
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].task, b.trace[i].task);
    EXPECT_EQ(a.trace[i].node, b.trace[i].node);
    EXPECT_DOUBLE_EQ(a.trace[i].start, b.trace[i].start);
    EXPECT_DOUBLE_EQ(a.trace[i].end, b.trace[i].end);
  }
}

}  // namespace
}  // namespace mri::mr
