#include "dfs/path.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mri::dfs {
namespace {

TEST(Path, Normalize) {
  EXPECT_EQ(normalize("/a/b/c"), "/a/b/c");
  EXPECT_EQ(normalize("a/b/c"), "/a/b/c");
  EXPECT_EQ(normalize("//a///b/"), "/a/b");
  EXPECT_EQ(normalize("/"), "/");
  EXPECT_EQ(normalize(""), "/");
}

TEST(Path, RejectsRelativeComponents) {
  EXPECT_THROW(normalize("/a/../b"), mri::InvalidArgument);
  EXPECT_THROW(normalize("./a"), mri::InvalidArgument);
}

TEST(Path, Join) {
  EXPECT_EQ(join("/Root", "A1/A.0"), "/Root/A1/A.0");
  EXPECT_EQ(join("/Root/", "/A1"), "/Root/A1");
  EXPECT_EQ(join("/", "x"), "/x");
}

TEST(Path, Parent) {
  EXPECT_EQ(parent("/a/b/c"), "/a/b");
  EXPECT_EQ(parent("/a"), "/");
  EXPECT_EQ(parent("/"), "/");
}

TEST(Path, Basename) {
  EXPECT_EQ(basename("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(basename("/a"), "a");
  EXPECT_EQ(basename("/"), "");
}

TEST(Path, Components) {
  EXPECT_EQ(components("/a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(components("/").empty());
}

}  // namespace
}  // namespace mri::dfs
