// DFS failure-model invariants: killing a datanode re-replicates its blocks
// back to the target replication from survivors, dead nodes never serve
// reads or receive writes, losing every replica fails fast with
// UnrecoverableBlock, and armed read errors fail over to live replicas.
#include "dfs/dfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/chaos.hpp"
#include "sim/metrics.hpp"

namespace mri::dfs {
namespace {

std::string payload(std::size_t bytes) {
  std::string s;
  s.reserve(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    s += static_cast<char>('a' + (i % 26));
  return s;
}

DfsConfig small_blocks(int replication) {
  DfsConfig cfg;
  cfg.block_size = 64;  // force several blocks per file
  cfg.replication = replication;
  return cfg;
}

TEST(DfsChaos, KillReReplicatesBackToTargetReplication) {
  Dfs fs(5, small_blocks(3));
  const std::string data = payload(1000);
  fs.write_text("/chaos/a", data);

  const NodeKillOutcome outcome = fs.kill_datanode(2);
  EXPECT_GT(outcome.re_replicated_blocks, 0)
      << "node 2 held no replicas of a 16-block file on 5 nodes?";
  EXPECT_GT(outcome.re_replicated_bytes, 0u);
  EXPECT_EQ(outcome.blocks_lost, 0);
  EXPECT_TRUE(fs.datanode_dead(2));
  EXPECT_EQ(fs.live_datanodes(), 4);

  for (const BlockLocation& block : fs.file_blocks("/chaos/a")) {
    EXPECT_EQ(block.replicas.size(), 3u)
        << "block " << block.id << " not restored to target replication";
    EXPECT_EQ(std::count(block.replicas.begin(), block.replicas.end(), 2), 0)
        << "block " << block.id << " still lists the dead node";
  }
  EXPECT_EQ(fs.read_text("/chaos/a"), data) << "reads touched the dead node";
}

TEST(DfsChaos, NewWritesAvoidDeadNodes) {
  Dfs fs(4, small_blocks(3));
  fs.kill_datanode(1);
  fs.write_text("/after", payload(500));
  for (const BlockLocation& block : fs.file_blocks("/after")) {
    EXPECT_EQ(std::count(block.replicas.begin(), block.replicas.end(), 1), 0);
    EXPECT_EQ(block.replicas.size(), 3u);  // 3 live nodes can still hold 3
  }
}

TEST(DfsChaos, LosingEveryReplicaFailsFastWithUnrecoverableBlock) {
  Dfs fs(3, small_blocks(1));
  fs.write_text("/lost", payload(200));
  const std::vector<BlockLocation> blocks = fs.file_blocks("/lost");
  ASSERT_FALSE(blocks.empty());
  const int holder = blocks.front().replicas.front();

  const NodeKillOutcome outcome = fs.kill_datanode(holder);
  EXPECT_GT(outcome.blocks_lost, 0);
  EXPECT_THROW(fs.read_text("/lost"), UnrecoverableBlock);
  // Fail fast on every retry, too — permanent loss never turns transient.
  EXPECT_THROW(fs.read_text("/lost"), UnrecoverableBlock);
}

TEST(DfsChaos, KillIsIdempotentPerNode) {
  Dfs fs(4, small_blocks(3));
  fs.write_text("/x", payload(300));
  fs.kill_datanode(3);
  const NodeKillOutcome second = fs.kill_datanode(3);
  EXPECT_EQ(second.re_replicated_blocks, 0);
  EXPECT_EQ(second.re_replicated_bytes, 0u);
  EXPECT_EQ(fs.live_datanodes(), 3);
}

TEST(DfsChaos, ReadErrorFailsOverToAnotherReplica) {
  MetricsRegistry metrics;
  Dfs fs(3, small_blocks(2), &metrics);
  const std::string data = payload(100);
  fs.write_text("/err", data);
  const int primary = fs.file_blocks("/err").front().replicas.front();

  fs.inject_read_error(primary);
  EXPECT_EQ(fs.read_text("/err"), data) << "failover to the second replica";
  EXPECT_GE(metrics.value("dfs_read_errors_survived"), 1u);
}

TEST(DfsChaos, ReadErrorWithoutAnotherReplicaIsTransient) {
  Dfs fs(2, small_blocks(1));
  const std::string data = payload(80);
  fs.write_text("/solo", data);
  const int holder = fs.file_blocks("/solo").front().replicas.front();

  fs.inject_read_error(holder);
  try {
    fs.read_text("/solo");
    FAIL() << "armed read error did not surface";
  } catch (const UnrecoverableBlock&) {
    FAIL() << "a transient read error must not be reported as permanent loss";
  } catch (const DfsError&) {
    // expected: transient, the retry below succeeds
  }
  EXPECT_EQ(fs.read_text("/solo"), data) << "error budget must be one-shot";
}

TEST(DfsChaos, BindChaosAppliesKillsAndAccountsReReplication) {
  ChaosEngine engine;
  engine.add_event({ChaosEventKind::kKillNode, 10.0, 1, 1.0});
  Dfs fs(4, small_blocks(3));
  fs.bind_chaos(&engine, /*network_bandwidth=*/1e6);
  fs.write_text("/bound", payload(600));

  engine.advance_to(5.0);
  EXPECT_FALSE(fs.datanode_dead(1));
  engine.advance_to(20.0);
  EXPECT_TRUE(fs.datanode_dead(1));

  const RecoveryStats stats = engine.stats();
  EXPECT_EQ(stats.nodes_killed, 1);
  EXPECT_GT(stats.re_replicated_bytes, 0u);
  EXPECT_GT(stats.re_replication_seconds, 0.0);
  EXPECT_EQ(stats.blocks_lost, 0);
}

// Placement must be a function of the file alone, not of commit order:
// chaos re-replication totals depend on which blocks lived on the dead
// node, so same-seed runs are only bit-identical if two filesystems built
// by different thread interleavings agree on every replica list.
TEST(DfsChaos, ReplicaPlacementIsDeterministicPerPath) {
  Dfs a(5, small_blocks(3));
  Dfs b(5, small_blocks(3));
  a.write_text("/interleave/other", payload(100));  // only a sees this write
  a.write_text("/p/q", payload(500));
  b.write_text("/p/q", payload(500));

  const auto blocks_a = a.file_blocks("/p/q");
  const auto blocks_b = b.file_blocks("/p/q");
  ASSERT_EQ(blocks_a.size(), blocks_b.size());
  for (std::size_t i = 0; i < blocks_a.size(); ++i) {
    EXPECT_EQ(blocks_a[i].replicas, blocks_b[i].replicas)
        << "block " << i << " placed by commit order, not by path";
  }
}

}  // namespace
}  // namespace mri::dfs
