// Block-integrity invariants: CRC32C checksums on the write path, silent
// corruption served as-is with verification off, detect + read-repair with
// it on, EC degraded decodes around corrupt cells, lineage repair for
// memory-tier partitions, hot-cache staleness after corruption, and the
// background scrubber catching copies no read ever touches.
#include "dfs/dfs.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dfs/integrity/checksum_store.hpp"
#include "dfs/integrity/crc32c.hpp"
#include "sim/chaos.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"

namespace mri::dfs {
namespace {

std::string payload(std::size_t bytes) {
  std::string s;
  s.reserve(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    s += static_cast<char>('a' + (i % 26));
  return s;
}

DfsConfig verified(int replication = 3, std::uint64_t block_size = 64) {
  DfsConfig cfg;
  cfg.block_size = block_size;
  cfg.replication = replication;
  cfg.verify_checksums = true;
  return cfg;
}

TEST(Crc32c, KnownAnswer) {
  const char* digits = "123456789";
  EXPECT_EQ(crc32c(std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(digits), 9)),
            0xE3069283u);
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(CorruptCopy, DeterministicAndDifferent) {
  auto data = std::make_shared<const std::vector<std::byte>>(
      256, std::byte{0x5a});
  const BlockData a = corrupt_copy(data, 17);
  const BlockData b = corrupt_copy(data, 17);
  const BlockData c = corrupt_copy(data, 18);
  EXPECT_EQ(*a, *b) << "same salt must flip the same bits";
  EXPECT_NE(*a, *data) << "a corrupt copy must actually differ";
  EXPECT_NE(*c, *data);
  EXPECT_EQ(data->size(), a->size()) << "corruption never changes length";
  EXPECT_EQ(std::vector<std::byte>(256, std::byte{0x5a}), *data)
      << "the pristine payload must not be touched";
}

TEST(Integrity, WritePathRecordsChecksums) {
  Dfs fs(4, verified());
  fs.write_text("/crc/a", payload(200));  // 200 B / 64 B blocks = 4 blocks
  const IntegrityStats stats = fs.integrity_stats();
  EXPECT_EQ(stats.cells_checksummed, 4);
  EXPECT_EQ(stats.corruptions_injected, 0);
  EXPECT_EQ(stats.corruptions_detected, 0);
}

TEST(Integrity, VerifyOffServesRottenBytesSilently) {
  DfsConfig cfg = verified();
  cfg.verify_checksums = false;
  Dfs fs(4, cfg);
  const std::string data = payload(200);
  fs.write_text("/rot/a", data);
  const int primary = fs.file_blocks("/rot/a").front().replicas.front();

  fs.corrupt_block(primary, /*at=*/1.0);
  const std::string read = fs.read_text("/rot/a");
  EXPECT_NE(read, data) << "silent corruption must reach the reader";
  EXPECT_EQ(read.size(), data.size());

  const IntegrityStats stats = fs.integrity_stats();
  EXPECT_EQ(stats.corruptions_injected, 1);
  EXPECT_EQ(stats.corruptions_detected, 0) << "nothing verifies, so nothing "
                                              "can detect";
  // The read must be repeatable (same rotten view), not freshly random.
  EXPECT_EQ(fs.read_text("/rot/a"), read);
}

TEST(Integrity, VerifyOnDetectsAndReadRepairs) {
  MetricsRegistry metrics;
  Dfs fs(4, verified(), &metrics);
  const std::string data = payload(200);
  fs.write_text("/fix/a", data);
  const int primary = fs.file_blocks("/fix/a").front().replicas.front();

  fs.corrupt_block(primary, /*at=*/1.0);
  EXPECT_EQ(fs.integrity_stats().corruptions_injected, 1);

  EXPECT_EQ(fs.read_text("/fix/a"), data)
      << "verification must repair before serving";
  const IntegrityStats stats = fs.integrity_stats();
  EXPECT_EQ(stats.corruptions_detected, 1);
  EXPECT_EQ(stats.cells_repaired_copy, 1);
  EXPECT_EQ(stats.cells_quarantined, 1);
  ASSERT_EQ(stats.repairs.size(), 1u);
  EXPECT_EQ(stats.repairs.front().kind, std::string("copy"));
  EXPECT_FALSE(stats.repairs.front().by_scrubber);

  // The mark is cleared: later reads serve clean bytes with no new repair.
  EXPECT_EQ(fs.read_text("/fix/a"), data);
  EXPECT_EQ(fs.integrity_stats().cells_repaired_copy, 1);
}

TEST(Integrity, EcDegradedReadDecodesAroundExactlyKCleanCells) {
  DfsConfig cfg = verified(3, 1024);
  cfg.storage_policy = StoragePolicy::kErasureCoded;
  cfg.ec.k = 3;
  cfg.ec.m = 2;
  Dfs fs(6, cfg);
  const std::string data = payload(600);  // single RS(3,2) stripe
  fs.write_text("/ec/a", data);
  const BlockLocation loc = fs.file_blocks("/ec/a").front();
  ASSERT_EQ(loc.replicas.size(), 5u);

  // Corrupt two cells: exactly k = 3 clean cells survive, the decode
  // threshold. Verification excludes the marked cells and decodes.
  fs.corrupt_block(loc.replicas[0], /*at=*/1.0);
  fs.corrupt_block(loc.replicas[1], /*at=*/2.0);
  EXPECT_EQ(fs.integrity_stats().corruptions_injected, 2);

  EXPECT_EQ(fs.read_text("/ec/a"), data)
      << "degraded decode from exactly k clean survivors";
  const IntegrityStats stats = fs.integrity_stats();
  EXPECT_EQ(stats.corruptions_detected, 2);
  EXPECT_EQ(stats.cells_repaired_ec, 2);
  EXPECT_EQ(fs.read_text("/ec/a"), data) << "repaired stripe reads clean";
}

TEST(Integrity, EcRefusesToServeWithFewerThanKCleanCells) {
  DfsConfig cfg = verified(3, 1024);
  cfg.storage_policy = StoragePolicy::kErasureCoded;
  cfg.ec.k = 3;
  cfg.ec.m = 2;
  Dfs fs(6, cfg);
  fs.write_text("/ec/b", payload(600));
  const BlockLocation loc = fs.file_blocks("/ec/b").front();
  for (int i = 0; i < 3; ++i) {
    fs.corrupt_block(loc.replicas[static_cast<std::size_t>(i)],
                     /*at=*/1.0 + i);
  }
  // 2 clean cells < k = 3: verification refuses to decode known-bad bytes.
  EXPECT_THROW(fs.read_text("/ec/b"), UnrecoverableBlock);
}

TEST(Integrity, HotCacheNeverServesAStaleCopyAfterCorruption) {
  // Regression: the namenode hot cache retains full-block payloads; a
  // corruption on the backing datanode copy must poison the cached entry,
  // not let the cache keep serving bytes that no longer match the disk.
  MetricsRegistry metrics;
  DfsConfig cfg = verified();
  cfg.hot_cache_bytes = 1 << 20;
  Dfs fs(4, cfg, &metrics);
  const std::string data = payload(300);
  fs.write_text("/factors/ut_0.bin", data);
  EXPECT_EQ(fs.read_text("/factors/ut_0.bin"), data);
  EXPECT_GE(metrics.value("dfs_hot_cache_hits"), 1u);

  const int primary =
      fs.file_blocks("/factors/ut_0.bin").front().replicas.front();
  fs.corrupt_block(primary, /*at=*/1.0);

  // Verification on: the poisoned entry is bypassed, the datanode path
  // repairs, and the caller still sees pristine bytes.
  EXPECT_EQ(fs.read_text("/factors/ut_0.bin"), data);
  EXPECT_EQ(fs.integrity_stats().cells_repaired_copy, 1);
  // Repair clears the poison: the entry is served from cache again.
  const std::uint64_t hits = metrics.value("dfs_hot_cache_hits");
  EXPECT_EQ(fs.read_text("/factors/ut_0.bin"), data);
  EXPECT_GT(metrics.value("dfs_hot_cache_hits"), hits);
}

TEST(Integrity, HotCacheServesTheRotWhenVerificationIsOff) {
  // The other direction of the staleness regression: with verification off
  // the cache must mirror what a datanode read would return — the rotten
  // bytes — not its stale pristine copy.
  DfsConfig cfg = verified();
  cfg.verify_checksums = false;
  cfg.hot_cache_bytes = 1 << 20;
  Dfs fs(4, cfg);
  const std::string data = payload(300);
  fs.write_text("/factors/ut_1.bin", data);
  EXPECT_EQ(fs.read_text("/factors/ut_1.bin"), data);

  const int primary =
      fs.file_blocks("/factors/ut_1.bin").front().replicas.front();
  fs.corrupt_block(primary, /*at=*/1.0);
  EXPECT_NE(fs.read_text("/factors/ut_1.bin"), data)
      << "hot cache must not hide corruption the datanodes would serve";
}

TEST(Integrity, KillClearsRotThatDiedWithTheNode) {
  // With verification off, corruption poisons the hot entry so cached reads
  // serve the same rot the disk would. When the corrupted copy's node dies
  // and the block is re-materialized from a clean replica, the datanode
  // tier is pristine again — the cache must follow, not keep serving a
  // corruption that no longer exists anywhere on disk.
  DfsConfig cfg;  // verification off: rot is served, never detected
  cfg.block_size = 64;
  cfg.replication = 2;
  cfg.hot_cache_bytes = 1 << 20;
  Dfs fs(3, cfg);
  const std::string data = payload(100);
  fs.write_text("/factors/ut_2.bin", data);
  const int victim =
      fs.file_blocks("/factors/ut_2.bin").front().replicas.front();
  fs.corrupt_block(victim, 1.0);
  EXPECT_NE(fs.read_text("/factors/ut_2.bin"), data)
      << "corrupting the primary copy must poison the cached bytes too";
  fs.kill_datanode(victim);
  EXPECT_EQ(fs.read_text("/factors/ut_2.bin"), data)
      << "hot cache kept rot whose only corrupted copy died with the node";
  EXPECT_TRUE(fs.integrity_stats().repairs.empty())
      << "nothing was detected or repaired: the bad copy simply died";
}

TEST(Integrity, MemoryTierCorruptionRoutesThroughLineage) {
  struct Recorder final : TierListener {
    std::vector<std::string> corrupted;
    void on_commit(const std::string&, StorageTier, std::uint64_t, int,
                   std::span<const std::byte>, const IoStats*) override {}
    void on_open(const std::string&, StorageTier, std::uint64_t) override {}
    void on_remove(const std::string&) override {}
    double on_corrupt(const std::string& path, double) override {
      corrupted.push_back(path);
      return 2.5;  // simulated producer re-run
    }
  } recorder;

  Dfs fs(3, verified());
  fs.set_tier_listener(&recorder);
  const std::string data = payload(120);
  {
    Dfs::Writer w = fs.create("/mem/p", nullptr, false, StorageTier::kMemory);
    w.write_text(data);
    w.close();
  }
  const int node = fs.file_blocks("/mem/p").front().replicas.front();
  fs.corrupt_block(node, /*at=*/1.0);

  EXPECT_EQ(fs.read_text("/mem/p"), data);
  const IntegrityStats stats = fs.integrity_stats();
  EXPECT_EQ(stats.cells_repaired_lineage, 1);
  EXPECT_EQ(stats.cells_repaired_copy, 0);
  ASSERT_EQ(recorder.corrupted.size(), 1u);
  EXPECT_EQ(recorder.corrupted.front(), "/mem/p");
  fs.set_tier_listener(nullptr);
}

TEST(Integrity, ScrubberCatchesCorruptionNoReadTouches) {
  DfsConfig cfg = verified();
  cfg.scrub_interval_seconds = 10.0;
  Dfs fs(4, cfg);
  const CostModel model = CostModel::ec2_medium();
  ChaosEngine chaos;
  fs.bind_chaos(&chaos, model.network_bandwidth, &model);
  const std::string data = payload(200);
  fs.write_text("/cold/a", data);
  const int primary = fs.file_blocks("/cold/a").front().replicas.front();
  fs.corrupt_block(primary, /*at=*/2.0);

  chaos.advance_to(5.0);  // before the first interval boundary: no pass yet
  EXPECT_EQ(fs.integrity_stats().scrub_passes, 0);

  chaos.advance_to(25.0);  // passes at t=10 and t=20
  const IntegrityStats stats = fs.integrity_stats();
  EXPECT_EQ(stats.scrub_passes, 2);
  EXPECT_EQ(stats.corruptions_detected, 1);
  EXPECT_EQ(stats.cells_repaired_copy, 1);
  EXPECT_GT(stats.scrub_bytes_scanned, 0u);
  EXPECT_GT(stats.scrub_seconds, 0.0);
  ASSERT_EQ(stats.repairs.size(), 1u);
  EXPECT_TRUE(stats.repairs.front().by_scrubber);
  ASSERT_EQ(stats.scrubs.size(), 2u);
  EXPECT_EQ(stats.scrubs.front().cells_repaired, 1);
  EXPECT_EQ(stats.scrubs.back().cells_repaired, 0);

  EXPECT_EQ(fs.read_text("/cold/a"), data);
}

TEST(Integrity, SameSequenceIsBitIdenticalAcrossInstances) {
  const auto drive = [](Dfs& fs) {
    fs.write_text("/det/a", payload(300));
    fs.write_text("/det/b", payload(180));
    fs.corrupt_block(1, /*at=*/3.0);
    fs.corrupt_block(2, /*at=*/7.0, /*salt=*/0x51ull);
    std::string out = fs.read_text("/det/a") + fs.read_text("/det/b");
    fs.scrub_to(40.0);
    return out;
  };
  DfsConfig cfg = verified();
  cfg.scrub_interval_seconds = 15.0;
  Dfs a(5, cfg);
  Dfs b(5, cfg);
  EXPECT_EQ(drive(a), drive(b));

  const IntegrityStats sa = a.integrity_stats();
  const IntegrityStats sb = b.integrity_stats();
  EXPECT_EQ(sa.corruptions_injected, sb.corruptions_injected);
  EXPECT_EQ(sa.corruptions_detected, sb.corruptions_detected);
  EXPECT_EQ(sa.cells_repaired_copy, sb.cells_repaired_copy);
  EXPECT_EQ(sa.scrub_passes, sb.scrub_passes);
  EXPECT_EQ(sa.scrub_bytes_scanned, sb.scrub_bytes_scanned);
  EXPECT_EQ(sa.scrub_seconds, sb.scrub_seconds);
  ASSERT_EQ(sa.repairs.size(), sb.repairs.size());
  for (std::size_t i = 0; i < sa.repairs.size(); ++i) {
    EXPECT_EQ(sa.repairs[i].path, sb.repairs[i].path);
    EXPECT_EQ(sa.repairs[i].cell, sb.repairs[i].cell);
    EXPECT_EQ(sa.repairs[i].node, sb.repairs[i].node);
    EXPECT_EQ(sa.repairs[i].at, sb.repairs[i].at);
  }
}

}  // namespace
}  // namespace mri::dfs
