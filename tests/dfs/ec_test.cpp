// Erasure-coded storage tier invariants: the GF(2^8) Reed–Solomon codec
// round-trips random payloads through any m losses, stripes spread their
// k+m cells over distinct nodes (flat and racked placement), degraded reads
// decode deterministically, losing more than m cells fails fast with
// UnrecoverableBlock, node kills repair by reconstruction (not
// re-replication), and the namenode hot-block cache serves resident files
// even after their cells die.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/inverter.hpp"
#include "dfs/dfs.hpp"
#include "dfs/ec/gf256.hpp"
#include "dfs/ec/rs_codec.hpp"
#include "mapreduce/trace_export.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "net/topology.hpp"
#include "sim/chaos.hpp"
#include "sim/io_stats.hpp"
#include "sim/metrics.hpp"

namespace mri::dfs {
namespace {

// Deterministic pseudo-random bytes (xorshift; no <random> to keep the
// payloads identical across platforms and libstdc++ versions).
std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  std::uint64_t x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::uint8_t>(x >> 32);
  }
  return out;
}

std::string payload(std::size_t bytes) {
  std::string s;
  s.reserve(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    s += static_cast<char>('a' + (i % 26));
  return s;
}

DfsConfig ec_config(int k, int m, std::size_t block_size = 64) {
  DfsConfig cfg;
  cfg.block_size = block_size;  // force several stripes per file
  cfg.storage_policy = StoragePolicy::kErasureCoded;
  cfg.ec.k = k;
  cfg.ec.m = m;
  return cfg;
}

// -- field and codec ------------------------------------------------------

TEST(Gf256, FieldAxiomsOnAllElements) {
  // Every non-zero element has an inverse and mul distributes over XOR on a
  // sample; exhaustive inverse check is cheap (255 elements).
  for (int a = 1; a < 256; ++a) {
    const auto inv = ec::gf_inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(ec::gf_mul(static_cast<std::uint8_t>(a), inv), 1)
        << "inv failed for " << a;
  }
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      for (int c = 0; c < 256; c += 13) {
        const auto av = static_cast<std::uint8_t>(a);
        const auto bv = static_cast<std::uint8_t>(b);
        const auto cv = static_cast<std::uint8_t>(c);
        EXPECT_EQ(ec::gf_mul(av, static_cast<std::uint8_t>(bv ^ cv)),
                  ec::gf_mul(av, bv) ^ ec::gf_mul(av, cv));
      }
    }
  }
  EXPECT_THROW(ec::gf_inv(0), InvalidArgument);
}

TEST(RsCodec, RoundTripsRandomPayloadsThroughEveryLossCount) {
  for (const auto& [k, m] : std::vector<std::pair<int, int>>{
           {3, 2}, {6, 3}, {10, 4}, {1, 1}}) {
    const std::size_t cell_len = 113;  // odd on purpose
    std::vector<std::vector<std::uint8_t>> data;
    std::vector<const std::uint8_t*> data_ptrs;
    for (int i = 0; i < k; ++i) {
      data.push_back(random_bytes(cell_len, static_cast<std::uint64_t>(
                                                k * 1000 + m * 100 + i)));
      data_ptrs.push_back(data.back().data());
    }
    const ec::RsCodec codec(k, m);
    const auto parity = codec.encode(data_ptrs, cell_len);
    ASSERT_EQ(parity.size(), static_cast<std::size_t>(m));

    // Knock out the first `lost` cells (data first, the harder direction)
    // and ask for all of them back.
    for (int lost = 1; lost <= m; ++lost) {
      std::vector<const std::uint8_t*> cells;
      std::vector<int> wanted;
      for (int i = 0; i < k; ++i) {
        cells.push_back(i < lost ? nullptr : data_ptrs[static_cast<std::size_t>(i)]);
        if (i < lost) wanted.push_back(i);
      }
      for (int j = 0; j < m; ++j) {
        cells.push_back(parity[static_cast<std::size_t>(j)].data());
      }
      const auto rebuilt = codec.reconstruct(cells, cell_len, wanted);
      ASSERT_EQ(rebuilt.size(), wanted.size());
      for (std::size_t w = 0; w < wanted.size(); ++w) {
        EXPECT_EQ(rebuilt[w], data[static_cast<std::size_t>(wanted[w])])
            << "RS(" << k << "," << m << ") lost=" << lost << " cell "
            << wanted[w];
      }
    }

    // Losing parity cells must also decode (rebuild a parity cell).
    if (m >= 2) {
      std::vector<const std::uint8_t*> cells;
      for (int i = 0; i < k; ++i)
        cells.push_back(data_ptrs[static_cast<std::size_t>(i)]);
      for (int j = 0; j < m; ++j)
        cells.push_back(j == 1 ? nullptr
                               : parity[static_cast<std::size_t>(j)].data());
      const auto rebuilt = codec.reconstruct(cells, cell_len, {k + 1});
      ASSERT_EQ(rebuilt.size(), 1u);
      EXPECT_EQ(rebuilt[0], parity[1]);
    }
  }
}

TEST(RsCodec, FewerThanKSurvivorsThrows) {
  const ec::RsCodec codec(4, 2);
  const std::vector<std::uint8_t> cell(16, 0x5a);
  std::vector<const std::uint8_t*> cells(6, nullptr);
  cells[0] = cell.data();
  cells[1] = cell.data();
  cells[2] = cell.data();  // only 3 of the needed 4
  EXPECT_THROW(codec.reconstruct(cells, cell.size(), {3}), Error);
}

// -- stripe placement -----------------------------------------------------

TEST(DfsEc, StripePlacementSpreadsCellsOverDistinctNodes) {
  Dfs fs(12, ec_config(6, 3, /*block_size=*/48));
  fs.write_text("/ec/a", payload(300));
  const auto blocks = fs.file_blocks("/ec/a");
  ASSERT_GT(blocks.size(), 1u) << "want several stripes";
  for (const BlockLocation& loc : blocks) {
    ASSERT_TRUE(loc.is_ec());
    EXPECT_EQ(loc.ec_k, 6);
    EXPECT_EQ(loc.ec_m, 3);
    ASSERT_EQ(loc.replicas.size(), 9u);
    const std::set<int> distinct(loc.replicas.begin(), loc.replicas.end());
    EXPECT_EQ(distinct.size(), loc.replicas.size())
        << "stripe cells share a node; one death would cost several cells";
  }
}

TEST(DfsEc, RackedPlacementKeepsCellsDistinctAndWriterLocal) {
  const int nodes = 12;
  Dfs fs(nodes, ec_config(6, 3, /*block_size=*/48));
  net::TopologyOptions opts;
  opts.kind = net::TopologyKind::kRacked;
  opts.racks = 4;
  opts.rack_aware_placement = true;
  fs.set_topology(std::make_shared<const net::Topology>(nodes, 1.0e9, opts));

  ScopedTransferLog log(/*node=*/5);
  fs.write_text("/ec/racked", payload(300));
  for (const BlockLocation& loc : fs.file_blocks("/ec/racked")) {
    ASSERT_EQ(loc.replicas.size(), 9u);
    const std::set<int> distinct(loc.replicas.begin(), loc.replicas.end());
    EXPECT_EQ(distinct.size(), loc.replicas.size());
    EXPECT_EQ(loc.replicas.front(), 5)
        << "first data cell must stay writer-local (HDFS-EC contract)";
  }
}

// -- accounting -----------------------------------------------------------

TEST(DfsEc, WriteAccountingChargesParityAndPipelinedCells) {
  MetricsRegistry metrics;
  // One stripe: 60 bytes over k=6 -> 10-byte cells, 3 parity cells.
  Dfs fs(9, ec_config(6, 3, /*block_size=*/64), &metrics);
  IoStats io;
  fs.write_text("/ec/acct", payload(60), &io);
  EXPECT_EQ(io.bytes_written, 60u);
  EXPECT_EQ(io.bytes_parity, 30u);       // m * cell
  EXPECT_EQ(io.bytes_replicated, 80u);   // (k+m-1) * cell leave the writer
  EXPECT_EQ(io.bytes_transferred, 80u);
  EXPECT_EQ(io.degraded_reads, 0u);
  // Physical = data + parity cells; logical = file bytes.
  EXPECT_EQ(fs.physical_bytes_stored(), 90u);
  EXPECT_EQ(fs.logical_bytes_stored(), 60u);
  EXPECT_EQ(metrics.value("dfs_ec_stripes_written"), 1u);
}

TEST(IoStatsEc, SubtractionUnderflowIsRejected) {
  IoStats a;
  a.bytes_parity = 10;
  IoStats b;
  b.bytes_parity = 20;
  EXPECT_THROW(a -= b, InvalidArgument);
  IoStats c;
  c.degraded_reads = 1;
  IoStats d;
  EXPECT_NO_THROW(d += c);
  EXPECT_THROW(d -= IoStats{.degraded_reads = 2}, InvalidArgument);
}

// -- degraded reads -------------------------------------------------------

TEST(DfsEc, DegradedReadDecodesDeterministically) {
  MetricsRegistry metrics;
  // nodes == k+m: after a kill there is no spare node to rebuild onto, so
  // the stripes stay degraded and every read pays the decode path.
  Dfs fs(6, ec_config(4, 2, /*block_size=*/64), &metrics);
  const std::string data = payload(500);
  fs.write_text("/ec/deg", data);
  const int victim = fs.file_blocks("/ec/deg").front().replicas[1];

  fs.kill_datanode(victim);
  IoStats io1, io2;
  const std::string r1 = fs.read_text("/ec/deg", &io1);
  const std::string r2 = fs.read_text("/ec/deg", &io2);
  EXPECT_EQ(r1, data) << "degraded read returned wrong bytes";
  EXPECT_EQ(r2, data);
  EXPECT_GT(io1.degraded_reads, 0u) << "slot 1 is a data cell; its loss "
                                       "must surface as a degraded read";
  EXPECT_GT(io1.bytes_reconstructed, 0u);
  EXPECT_EQ(io1.bytes_read, io2.bytes_read);
  EXPECT_EQ(io1.bytes_reconstructed, io2.bytes_reconstructed);
  EXPECT_EQ(io1.degraded_reads, io2.degraded_reads);
}

TEST(DfsEc, ReadSurvivesUpToMLossesThenFailsFast) {
  Dfs fs(6, ec_config(3, 2, /*block_size=*/64));
  const std::string data = payload(300);
  fs.write_text("/ec/loss", data);
  std::vector<int> holders = fs.file_blocks("/ec/loss").front().replicas;

  // m = 2 node deaths leave exactly k survivors per stripe: still readable.
  // Kill the namenode's repair targets too, so cells stay lost instead of
  // being rebuilt (5 of 6 nodes dead leaves nowhere to reconstruct to).
  std::set<int> killed;
  fs.kill_datanode(holders[0]);
  killed.insert(holders[0]);
  fs.kill_datanode(holders[1]);
  killed.insert(holders[1]);
  EXPECT_EQ(fs.read_text("/ec/loss"), data);

  // Kill every node but one surviving holder: fewer than k cells remain.
  for (int n = 0; n < fs.num_datanodes(); ++n) {
    if (n == holders[4]) continue;
    if (killed.insert(n).second) fs.kill_datanode(n);
  }
  EXPECT_THROW(fs.read_text("/ec/loss"), UnrecoverableBlock);
  EXPECT_THROW(fs.read_text("/ec/loss"), UnrecoverableBlock)
      << "permanent loss must not turn transient on retry";
}

TEST(DfsEc, ArmedReadErrorFailsOverToDecode) {
  MetricsRegistry metrics;
  Dfs fs(6, ec_config(3, 2, /*block_size=*/64), &metrics);
  const std::string data = payload(200);
  fs.write_text("/ec/err", data);
  const int primary = fs.file_blocks("/ec/err").front().replicas.front();

  fs.inject_read_error(primary);
  EXPECT_EQ(fs.read_text("/ec/err"), data)
      << "a failing cell read must fail over to the remaining cells";
  EXPECT_GE(metrics.value("dfs_read_errors_survived"), 1u);
}

// -- kill-path reconstruction --------------------------------------------

TEST(DfsEc, NodeKillReconstructsCellsInsteadOfReplicating) {
  MetricsRegistry metrics;
  Dfs fs(8, ec_config(4, 2, /*block_size=*/64), &metrics);
  CostModel model = CostModel::ec2_medium();
  ChaosEngine chaos;
  fs.bind_chaos(&chaos, model.network_bandwidth, &model);
  const std::string data = payload(500);
  fs.write_text("/ec/kill", data);
  const int victim = fs.file_blocks("/ec/kill").front().replicas[2];

  const NodeKillOutcome outcome = fs.kill_datanode(victim, /*at=*/12.5);
  EXPECT_GT(outcome.ec_cells_reconstructed, 0);
  EXPECT_GT(outcome.ec_reconstructed_bytes, 0u);
  EXPECT_EQ(outcome.re_replicated_blocks, 0)
      << "EC files repair by decode, not re-replication";
  EXPECT_EQ(outcome.blocks_lost, 0);
  EXPECT_GT(outcome.re_replication_seconds, 0.0)
      << "reconstruction must cost fan-in plus decode time";

  // Every stripe is whole again, on live distinct nodes.
  for (const BlockLocation& loc : fs.file_blocks("/ec/kill")) {
    ASSERT_EQ(loc.replicas.size(), 6u);
    for (int holder : loc.replicas) {
      EXPECT_GE(holder, 0);
      EXPECT_NE(holder, victim);
      EXPECT_FALSE(fs.datanode_dead(holder));
    }
    const std::set<int> distinct(loc.replicas.begin(), loc.replicas.end());
    EXPECT_EQ(distinct.size(), loc.replicas.size());
  }
  EXPECT_EQ(fs.read_text("/ec/kill"), data);

  const auto events = fs.storage_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].at, 12.5);
  EXPECT_EQ(events[0].node, victim);
  EXPECT_EQ(events[0].cells, outcome.ec_cells_reconstructed);
  EXPECT_GT(events[0].seconds, 0.0);
  EXPECT_GE(metrics.value("dfs_ec_cells_reconstructed"),
            static_cast<std::uint64_t>(outcome.ec_cells_reconstructed));
}

TEST(DfsEc, ReplicatedFilesStillReReplicateUnderEcPolicy) {
  // Memory-tier files are never striped; their single replica dies with the
  // node and surfaces via lost_files exactly as before.
  Dfs fs(6, ec_config(3, 2, /*block_size=*/64));
  {
    IoStats io;
    auto w = fs.create("/mem/f", &io, false, StorageTier::kMemory);
    w.write_text(payload(100));
    w.close();
  }
  const int holder = fs.file_blocks("/mem/f").front().replicas.front();
  const NodeKillOutcome outcome = fs.kill_datanode(holder);
  EXPECT_GT(outcome.blocks_lost, 0);
  ASSERT_EQ(outcome.lost_files.size(), 1u);
  EXPECT_EQ(outcome.lost_files[0], "/mem/f");
}

// -- hot-block cache ------------------------------------------------------

TEST(DfsHotCache, ServesResidentFilesAndCountsHits) {
  MetricsRegistry metrics;
  DfsConfig cfg;
  cfg.block_size = 64;
  cfg.hot_cache_bytes = 1024;
  Dfs fs(4, cfg, &metrics);
  const std::string hot = payload(200);
  fs.write_text("/work/ut_0_0", hot);
  fs.write_text("/work/other", payload(200));

  const HotCacheStats before = fs.hot_cache_stats();
  EXPECT_EQ(before.capacity_bytes, 1024u);
  EXPECT_EQ(before.resident_files, 1) << "only the ut-prefixed file caches";
  EXPECT_EQ(before.resident_bytes, 200u);

  EXPECT_EQ(fs.read_text("/work/ut_0_0"), hot);
  EXPECT_EQ(fs.read_text("/work/other"), payload(200));
  const HotCacheStats after = fs.hot_cache_stats();
  EXPECT_EQ(after.hits, 1u) << "only the resident file may hit";
  EXPECT_EQ(after.hit_bytes, 200u);
  EXPECT_EQ(metrics.value("dfs_hot_cache_hits"), 1u);
}

TEST(DfsHotCache, ServesFileEvenAfterEveryReplicaDied) {
  DfsConfig cfg = ec_config(2, 1, /*block_size=*/64);
  cfg.hot_cache_bytes = 4096;
  Dfs fs(3, cfg);
  const std::string hot = payload(150);
  fs.write_text("/work/ut_hot", hot);
  for (int n = 0; n < 3; ++n) fs.kill_datanode(n);
  EXPECT_EQ(fs.read_text("/work/ut_hot"), hot)
      << "the namenode's cached copy must outlive the datanodes";
}

TEST(DfsHotCache, CapacityBoundIsRespectedDeterministically) {
  DfsConfig cfg;
  cfg.block_size = 64;
  cfg.hot_cache_bytes = 250;
  Dfs fs(3, cfg);
  // Sorted-path greedy: /w/ut_a (100) fits, /w/ut_b (200) would overflow,
  // /w/ut_c (100) fits — independent of commit order.
  fs.write_text("/w/ut_c", payload(100));
  fs.write_text("/w/ut_b", payload(200));
  fs.write_text("/w/ut_a", payload(100));
  const HotCacheStats stats = fs.hot_cache_stats();
  EXPECT_EQ(stats.resident_files, 2);
  EXPECT_EQ(stats.resident_bytes, 200u);
}

// -- CLI-facing parameter validation --------------------------------------

TEST(EcParams, ParserRejectsMalformedSpecs) {
  EXPECT_THROW(parse_ec_params("6"), InvalidArgument);
  EXPECT_THROW(parse_ec_params("6,"), InvalidArgument);
  EXPECT_THROW(parse_ec_params(",3"), InvalidArgument);
  EXPECT_THROW(parse_ec_params("a,b"), InvalidArgument);
  EXPECT_THROW(parse_ec_params("6,3x"), InvalidArgument);
  EXPECT_THROW(parse_ec_params("0,3"), InvalidArgument);
  EXPECT_THROW(parse_ec_params("6,0"), InvalidArgument);
  EXPECT_THROW(parse_ec_params("200,100"), InvalidArgument);
  const EcParams p = parse_ec_params("10,4");
  EXPECT_EQ(p.k, 10);
  EXPECT_EQ(p.m, 4);
}

TEST(DfsEc, ConstructorRejectsStripesWiderThanTheCluster) {
  EXPECT_THROW(Dfs(5, ec_config(6, 3)), Error);
}

// -- end-to-end determinism ----------------------------------------------

struct EcRun {
  bool completed = false;
  std::string error;
  double residual = 0.0;
  std::string report_json;
  RunReport report;
};

EcRun run_inversion_once(const std::vector<ChaosEvent>& events) {
  const CostModel model = CostModel::ec2_medium().scaled_down(40.0);
  MetricsRegistry metrics;
  Cluster cluster(6, model);
  DfsConfig cfg = ec_config(3, 2, /*block_size=*/64ull << 10);
  cfg.hot_cache_bytes = 8ull << 20;
  Dfs fs(6, cfg, &metrics);
  ThreadPool pool(4);
  ChaosEngine chaos;
  for (const ChaosEvent& e : events) chaos.add_event(e);
  fs.bind_chaos(&chaos, model.network_bandwidth, &model);

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics,
                                   &chaos);
  core::InversionOptions options;
  options.nb = 16;
  const Matrix a = random_matrix(64, 11);

  EcRun run;
  try {
    core::MapReduceInverter::Result result = inverter.invert(a, options);
    run.completed = true;
    run.residual = inversion_residual(a, result.inverse);
    run.report =
        mr::build_run_report(result.jobs, cluster, &metrics,
                             result.master_spans, &chaos, nullptr, &fs);
    run.report_json = run_report_json(run.report);
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  return run;
}

TEST(DfsEc, SameSeedChaosRunsAreBitIdentical) {
  const EcRun clean = run_inversion_once({});
  ASSERT_TRUE(clean.completed) << clean.error;
  ASSERT_LT(clean.residual, 1e-10);
  EXPECT_EQ(clean.report.storage.policy, "erasure_coded");
  EXPECT_EQ(clean.report.storage.ec_k, 3);
  EXPECT_EQ(clean.report.storage.ec_m, 2);
  EXPECT_GT(clean.report.storage.logical_bytes, 0u);
  EXPECT_GT(clean.report.storage.parity_bytes, 0u);
  // RS(3,2) physical overhead ~5/3, far below replication's 3x.
  EXPECT_LT(clean.report.storage.physical_overhead, 2.0);
  EXPECT_GT(clean.report.storage.physical_overhead, 1.0);

  const std::vector<ChaosEvent> events = {
      {ChaosEventKind::kKillNode, 0.5 * clean.report.sim_seconds, 5, 1.0}};
  const EcRun a = run_inversion_once(events);
  const EcRun b = run_inversion_once(events);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  EXPECT_LT(a.residual, 1e-10) << "EC recovery lost accuracy";
  EXPECT_EQ(a.report_json, b.report_json)
      << "same schedule, same seed, different EC report";
}

}  // namespace
}  // namespace mri::dfs
