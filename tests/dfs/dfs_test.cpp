#include "dfs/dfs.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread_pool.hpp"

namespace mri::dfs {
namespace {

TEST(Dfs, TextRoundTrip) {
  Dfs fs(3);
  fs.write_text("/a/hello.txt", "hello world");
  EXPECT_EQ(fs.read_text("/a/hello.txt"), "hello world");
}

TEST(Dfs, DoubleRoundTrip) {
  Dfs fs(3);
  std::vector<double> values = {1.5, -2.25, 1e308, 0.0};
  fs.write_doubles("/v.bin", values);
  EXPECT_EQ(fs.read_doubles("/v.bin"), values);
}

TEST(Dfs, EmptyFile) {
  Dfs fs(2);
  fs.write_text("/empty", "");
  EXPECT_EQ(fs.file_size("/empty"), 0u);
  EXPECT_EQ(fs.read_text("/empty"), "");
}

TEST(Dfs, MultiBlockFile) {
  DfsConfig cfg;
  cfg.block_size = 16;  // force many blocks
  Dfs fs(3, cfg);
  std::string payload;
  for (int i = 0; i < 100; ++i) payload += "0123456789";
  fs.write_text("/big", payload);
  EXPECT_EQ(fs.read_text("/big"), payload);
}

TEST(Dfs, SeekAcrossBlocks) {
  DfsConfig cfg;
  cfg.block_size = 8;
  Dfs fs(2, cfg);
  std::vector<double> values(10);
  for (int i = 0; i < 10; ++i) values[static_cast<std::size_t>(i)] = i;
  fs.write_doubles("/v", values);
  auto r = fs.open("/v");
  r.seek(5 * sizeof(double));
  EXPECT_EQ(r.read_double(), 5.0);
  EXPECT_EQ(r.read_double(), 6.0);
}

TEST(Dfs, ReadAccounting) {
  MetricsRegistry metrics;
  Dfs fs(3, DfsConfig{}, &metrics);
  fs.write_text("/f", std::string(1000, 'x'));
  IoStats io;
  fs.read_text("/f", &io);
  EXPECT_EQ(io.bytes_read, 1000u);
  EXPECT_EQ(io.bytes_transferred, 1000u);  // HDFS read = remote read
  EXPECT_EQ(metrics.io_totals().bytes_read, 1000u);
}

TEST(Dfs, WriteAccountingWithReplication) {
  MetricsRegistry metrics;
  Dfs fs(5, DfsConfig{}, &metrics);  // replication 3
  IoStats io;
  fs.write_text("/f", std::string(600, 'y'), &io);
  EXPECT_EQ(io.bytes_written, 600u);
  EXPECT_EQ(io.bytes_replicated, 1200u);
  EXPECT_EQ(io.bytes_transferred, 1200u);
  // All replicas resident across datanodes.
  EXPECT_EQ(fs.physical_bytes_stored(), 1800u);
}

TEST(Dfs, ReplicationClampedToClusterSize) {
  Dfs fs(2);  // replication 3 requested, only 2 nodes
  IoStats io;
  fs.write_text("/f", std::string(100, 'z'), &io);
  EXPECT_EQ(io.bytes_replicated, 100u);
  EXPECT_EQ(fs.physical_bytes_stored(), 200u);
}

TEST(Dfs, RemoveEvictsBlocks) {
  Dfs fs(3);
  fs.write_text("/d/f", std::string(100, 'a'));
  EXPECT_GT(fs.physical_bytes_stored(), 0u);
  fs.remove("/d", /*recursive=*/true);
  EXPECT_EQ(fs.physical_bytes_stored(), 0u);
}

TEST(Dfs, WriterMoveAndExplicitClose) {
  Dfs fs(2);
  {
    auto w = fs.create("/m");
    w.write_text("abc");
    auto w2 = std::move(w);
    w2.write_text("def");
    w2.close();
  }
  EXPECT_EQ(fs.read_text("/m"), "abcdef");
}

TEST(Dfs, WriterCommitsOnDestruction) {
  Dfs fs(2);
  {
    auto w = fs.create("/auto");
    w.write_text("x");
  }
  EXPECT_TRUE(fs.is_file("/auto"));
}

TEST(Dfs, DuplicateCreateThrowsOnClose) {
  Dfs fs(2);
  fs.write_text("/dup", "1");
  auto w = fs.create("/dup");
  w.write_text("2");
  EXPECT_THROW(w.close(), DfsError);
}

TEST(Dfs, ShortReadThrows) {
  Dfs fs(2);
  fs.write_text("/small", "ab");
  auto r = fs.open("/small");
  std::array<std::byte, 10> buf{};
  EXPECT_THROW(r.read_exact(buf), DfsError);
}

TEST(Dfs, ReadAllDoublesRejectsMisaligned) {
  Dfs fs(2);
  fs.write_text("/odd", "12345");  // not a multiple of 8
  EXPECT_THROW(fs.read_doubles("/odd"), DfsError);
}

TEST(Dfs, ConcurrentWritersDistinctFiles) {
  // §5.2's design point: tasks write disjoint files with no synchronization.
  MetricsRegistry metrics;
  Dfs fs(8, DfsConfig{}, &metrics);
  ThreadPool pool(8);
  pool.parallel_for(64, [&](std::size_t i) {
    fs.write_text("/out/f." + std::to_string(i), std::string(i + 1, 'w'));
  });
  EXPECT_EQ(fs.list("/out").size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(fs.file_size("/out/f." + std::to_string(i)), i + 1);
  }
}

TEST(Dfs, ConcurrentReadersSameFile) {
  Dfs fs(4);
  const std::string payload(4096, 'r');
  fs.write_text("/shared", payload);
  ThreadPool pool(8);
  pool.parallel_for(32, [&](std::size_t) {
    EXPECT_EQ(fs.read_text("/shared"), payload);
  });
}

TEST(Dfs, MemoryTierSkipsDiskAndReplication) {
  MetricsRegistry metrics;
  Dfs fs(4, DfsConfig{}, &metrics);
  IoStats io;
  auto w = fs.create("/hot", &io, /*overwrite=*/false, StorageTier::kMemory);
  w.write_text(std::string(900, 'm'));
  w.close();
  EXPECT_EQ(io.bytes_written, 0u);
  EXPECT_EQ(io.bytes_replicated, 0u);
  EXPECT_EQ(io.bytes_transferred, 0u);
  EXPECT_EQ(io.bytes_written_memory, 900u);
  // One unreplicated copy resident.
  EXPECT_EQ(fs.physical_bytes_stored(), 900u);
  // Reads are charged normally (remote fetch).
  IoStats read_io;
  EXPECT_EQ(fs.read_text("/hot", &read_io).size(), 900u);
  EXPECT_EQ(read_io.bytes_read, 900u);
}

TEST(Dfs, RenameVisibleToReaders) {
  Dfs fs(2);
  fs.write_text("/tmp.part", "data");
  fs.rename("/tmp.part", "/final");
  EXPECT_EQ(fs.read_text("/final"), "data");
  EXPECT_FALSE(fs.exists("/tmp.part"));
}

// ---- rack-aware placement and transfer recording ----------------------------

std::shared_ptr<const net::Topology> racked_topology_of(int hosts, int racks,
                                                        bool rack_aware) {
  net::TopologyOptions o;
  o.kind = net::TopologyKind::kRacked;
  o.racks = racks;
  o.rack_aware_placement = rack_aware;
  return std::make_shared<const net::Topology>(hosts, 100e6, o);
}

TEST(DfsRacked, HdfsDefaultPlacementWriterRackLocalOffRack) {
  // 8 nodes over 4 racks (2 per rack). Writing from node 5 (rack 2) must
  // put the first replica on the writer, the second in the writer's rack
  // and the third outside it.
  Dfs fs(8);
  auto topo = racked_topology_of(8, 4, /*rack_aware=*/true);
  fs.set_topology(topo);
  ScopedTransferLog log(/*node=*/5);
  fs.write_text("/placed", std::string(1000, 'p'));
  const auto blocks = fs.file_blocks("/placed");
  ASSERT_EQ(blocks.size(), 1u);
  const auto& replicas = blocks[0].replicas;
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0], 5);
  EXPECT_EQ(topo->rack_of(replicas[1]), topo->rack_of(5));
  EXPECT_NE(replicas[1], 5);
  EXPECT_NE(topo->rack_of(replicas[2]), topo->rack_of(5));

  // The write pipeline was recorded: writer -> r1 -> r2 (no extra hop to
  // the first replica, it IS the writer's node).
  const auto& transfers = log.log().transfers;
  ASSERT_EQ(transfers.size(), 2u);
  EXPECT_EQ(transfers[0].src, 5);
  EXPECT_EQ(transfers[0].dst, replicas[1]);
  EXPECT_EQ(transfers[0].kind, net::TransferKind::kWrite);
  EXPECT_EQ(transfers[1].src, replicas[1]);
  EXPECT_EQ(transfers[1].dst, replicas[2]);
  EXPECT_EQ(transfers[0].bytes, 1000u);
}

TEST(DfsRacked, ClosestReplicaReadAndRecording) {
  Dfs fs(8);
  auto topo = racked_topology_of(8, 4, /*rack_aware=*/true);
  fs.set_topology(topo);
  {
    ScopedTransferLog write_log(/*node=*/5);
    fs.write_text("/near", std::string(500, 'n'));
  }
  // A reader on the writer's node sees a node-local copy (src == dst).
  {
    ScopedTransferLog read_log(/*node=*/5);
    EXPECT_EQ(fs.read_text("/near").size(), 500u);
    ASSERT_EQ(read_log.log().transfers.size(), 1u);
    EXPECT_EQ(read_log.log().transfers[0].src, 5);
    EXPECT_EQ(read_log.log().transfers[0].dst, 5);
    EXPECT_EQ(read_log.log().transfers[0].kind, net::TransferKind::kRead);
  }
  // A reader elsewhere in rack 2 picks the rack-local replica over the
  // off-rack one.
  const int other_in_rack = 4;  // rack_of(4) == rack_of(5) == 2
  {
    ScopedTransferLog read_log(other_in_rack);
    fs.read_text("/near");
    ASSERT_EQ(read_log.log().transfers.size(), 1u);
    const int src = read_log.log().transfers[0].src;
    EXPECT_EQ(topo->rack_of(src), topo->rack_of(other_in_rack));
  }
}

TEST(DfsRacked, FlatTopologyPlacementUnchanged) {
  // A flat Topology attached to the DFS must not change placement: layouts
  // are the same deterministic hash function of the path as with no
  // topology at all, and nothing is recorded.
  Dfs bare(6);
  bare.write_text("/same", std::string(100, 's'));
  Dfs flat(6);
  flat.set_topology(std::make_shared<const net::Topology>(6, 100e6));
  ScopedTransferLog log(/*node=*/2);
  flat.write_text("/same", std::string(100, 's'));
  EXPECT_EQ(bare.file_blocks("/same")[0].replicas,
            flat.file_blocks("/same")[0].replicas);
  EXPECT_TRUE(log.log().transfers.empty());
}

TEST(DfsRacked, KillSimulatesRepairFlowsAndPrefersSourceRack) {
  // Under a racked topology the repair traffic is flow-simulated:
  // re_replication_seconds must come back positive (engine stops falling
  // back to bytes / bandwidth) and repaired blocks stay at full
  // replication on live nodes.
  Dfs fs(8);
  fs.set_topology(racked_topology_of(8, 4, /*rack_aware=*/true));
  {
    ScopedTransferLog log(/*node=*/5);
    fs.write_text("/repair", std::string(4000, 'r'));
  }
  const NodeKillOutcome outcome = fs.kill_datanode(5);
  EXPECT_EQ(outcome.re_replicated_blocks, 1);
  EXPECT_EQ(outcome.re_replicated_bytes, 4000u);
  EXPECT_GT(outcome.re_replication_seconds, 0.0);
  const auto replicas = fs.file_blocks("/repair")[0].replicas;
  ASSERT_EQ(replicas.size(), 3u);
  for (int r : replicas) EXPECT_NE(r, 5);
}

}  // namespace
}  // namespace mri::dfs
