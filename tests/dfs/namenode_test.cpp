#include "dfs/namenode.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mri::dfs {
namespace {

BlockLocation block(BlockId id, std::uint64_t len) {
  return BlockLocation{id, len, {0}};
}

TEST(NameNode, MkdirsIsIdempotent) {
  NameNode nn;
  nn.mkdirs("/a/b/c");
  nn.mkdirs("/a/b/c");
  EXPECT_TRUE(nn.is_directory("/a/b/c"));
  EXPECT_TRUE(nn.is_directory("/a"));
}

TEST(NameNode, CommitCreatesParents) {
  NameNode nn;
  nn.commit_file("/x/y/z.bin", {block(1, 100)});
  EXPECT_TRUE(nn.is_file("/x/y/z.bin"));
  EXPECT_TRUE(nn.is_directory("/x/y"));
  EXPECT_EQ(nn.file_size("/x/y/z.bin"), 100u);
}

TEST(NameNode, DuplicateCreateThrows) {
  NameNode nn;
  nn.commit_file("/f", {});
  EXPECT_THROW(nn.commit_file("/f", {}), DfsError);
  EXPECT_NO_THROW(nn.commit_file("/f", {}, /*overwrite=*/true));
}

TEST(NameNode, CannotCreateDirOverFile) {
  NameNode nn;
  nn.commit_file("/f", {});
  EXPECT_THROW(nn.mkdirs("/f/sub"), Error);
}

TEST(NameNode, ListIsSorted) {
  NameNode nn;
  nn.commit_file("/d/b", {});
  nn.commit_file("/d/a", {});
  nn.mkdirs("/d/c");
  EXPECT_EQ(nn.list("/d"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_THROW(nn.list("/nope"), DfsError);
}

TEST(NameNode, FileBlocksRoundTrip) {
  NameNode nn;
  nn.commit_file("/f", {block(1, 10), block(2, 20)});
  const auto blocks = nn.file_blocks("/f");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].id, 1u);
  EXPECT_EQ(blocks[1].length, 20u);
  EXPECT_EQ(nn.file_size("/f"), 30u);
}

TEST(NameNode, RemoveFileReturnsBlocks) {
  NameNode nn;
  nn.commit_file("/f", {block(7, 10)});
  const auto removed = nn.remove("/f");
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].id, 7u);
  EXPECT_FALSE(nn.exists("/f"));
}

TEST(NameNode, RecursiveRemove) {
  NameNode nn;
  nn.commit_file("/d/sub/a", {block(1, 1)});
  nn.commit_file("/d/b", {block(2, 2)});
  EXPECT_THROW(nn.remove("/d"), DfsError);  // not empty, not recursive
  const auto removed = nn.remove("/d", /*recursive=*/true);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_FALSE(nn.exists("/d"));
}

TEST(NameNode, RemoveRootRefused) {
  NameNode nn;
  EXPECT_THROW(nn.remove("/", true), InvalidArgument);
}

TEST(NameNode, Rename) {
  NameNode nn;
  nn.commit_file("/a/f", {block(1, 5)});
  nn.rename("/a/f", "/b/g");
  EXPECT_FALSE(nn.exists("/a/f"));
  EXPECT_EQ(nn.file_size("/b/g"), 5u);
}

TEST(NameNode, RenameDirectory) {
  NameNode nn;
  nn.commit_file("/a/x/f", {});
  nn.rename("/a", "/z");
  EXPECT_TRUE(nn.is_file("/z/x/f"));
}

TEST(NameNode, RenameIntoItselfRefused) {
  NameNode nn;
  nn.mkdirs("/a");
  EXPECT_THROW(nn.rename("/a", "/a/b"), InvalidArgument);
}

TEST(NameNode, RenameOntoExistingThrows) {
  NameNode nn;
  nn.commit_file("/a", {});
  nn.commit_file("/b", {});
  EXPECT_THROW(nn.rename("/a", "/b"), DfsError);
}

TEST(NameNode, FileCount) {
  NameNode nn;
  EXPECT_EQ(nn.file_count(), 0u);
  nn.commit_file("/a/b", {});
  nn.commit_file("/a/c", {});
  nn.commit_file("/d", {});
  EXPECT_EQ(nn.file_count(), 3u);
}

}  // namespace
}  // namespace mri::dfs
