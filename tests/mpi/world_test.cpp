// The message-passing simulator: correctness of the primitives and the
// Lamport-clock timing semantics.
#include "mpi/world.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mri::mpi {
using mri::NumericalError;
namespace {

CostModel flat_model() {
  CostModel m;
  m.network_bandwidth = 1e6;  // 1 MB/s: 8000 doubles/s
  m.message_latency_seconds = 0.0;
  m.node_speed_variance = 0.0;
  m.flops_per_second = 1e9;
  return m;
}

TEST(World, SendRecvDelivers) {
  Cluster cluster(2, flat_model());
  World world(cluster);
  std::vector<double> got;
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, {1.0, 2.0, 3.0});
    } else {
      got = comm.recv(0);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(World, TagsKeepChannelsApart) {
  Cluster cluster(2, flat_model());
  World world(cluster);
  std::vector<double> a, b;
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, {1.0}, /*tag=*/7);
      comm.send(1, {2.0}, /*tag=*/9);
    } else {
      b = comm.recv(0, /*tag=*/9);  // receive out of send order
      a = comm.recv(0, /*tag=*/7);
    }
  });
  EXPECT_EQ(a, std::vector<double>{1.0});
  EXPECT_EQ(b, std::vector<double>{2.0});
}

TEST(World, FifoWithinChannel) {
  Cluster cluster(2, flat_model());
  World world(cluster);
  std::vector<double> first, second;
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, {1.0});
      comm.send(1, {2.0});
    } else {
      first = comm.recv(0);
      second = comm.recv(0);
    }
  });
  EXPECT_EQ(first[0], 1.0);
  EXPECT_EQ(second[0], 2.0);
}

TEST(World, TransferTimeCharged) {
  Cluster cluster(2, flat_model());
  World world(cluster);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, std::vector<double>(125000, 1.0));  // 1 MB -> 1 s
    } else {
      comm.recv(0);
    }
  });
  // Sender: 1 s to push; receiver: arrival at 1 s + 1 s to pull = 2 s.
  EXPECT_NEAR(world.sim_seconds(), 2.0, 1e-9);
  EXPECT_EQ(world.total_io().bytes_transferred, 1'000'000u);
}

TEST(World, ComputeAdvancesClock) {
  Cluster cluster(1, flat_model());
  World world(cluster);
  world.run([&](Comm& comm) {
    IoStats io;
    io.mults = 3'000'000'000ull;
    comm.compute(io);
  });
  EXPECT_NEAR(world.sim_seconds(), 3.0, 1e-9);
  EXPECT_EQ(world.total_io().mults, 3'000'000'000ull);
}

TEST(World, BarrierSynchronizesClocks) {
  Cluster cluster(3, flat_model());
  World world(cluster);
  std::vector<double> after(3);
  world.run([&](Comm& comm) {
    IoStats io;
    io.mults = static_cast<std::uint64_t>(comm.rank() + 1) * 1'000'000'000ull;
    comm.compute(io);  // rank r busy (r+1) seconds
    comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.clock();
  });
  for (double t : after) EXPECT_NEAR(t, 3.0, 1e-9);
}

TEST(World, BcastReachesAllRanks) {
  for (int p : {2, 3, 4, 5, 8}) {
    Cluster cluster(p, flat_model());
    World world(cluster);
    std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
    world.run([&](Comm& comm) {
      std::vector<double> payload;
      if (comm.rank() == 1 % p) payload = {4.0, 5.0};
      comm.bcast(&payload, 1 % p);
      got[static_cast<std::size_t>(comm.rank())] = payload;
    });
    for (const auto& v : got) EXPECT_EQ(v, (std::vector<double>{4.0, 5.0}));
  }
}

TEST(World, BcastTreeBeatsFlatTiming) {
  // A binomial tree over 8 ranks completes in ~3 rounds, not 7.
  CostModel m = flat_model();
  Cluster cluster(8, m);
  World world(cluster);
  world.run([&](Comm& comm) {
    std::vector<double> payload;
    if (comm.rank() == 0) payload.assign(125000, 1.0);  // 1 MB
    comm.bcast(&payload, 0);
    comm.barrier();
  });
  // Tree depth 3: root sends 3 times (3 s); deepest leaf receives after
  // <= 3 hops * (send + recv) but well under flat 7 * 2 s.
  EXPECT_LT(world.sim_seconds(), 8.0);
  EXPECT_GE(world.sim_seconds(), 3.0);
  // Every rank but the root received 1 MB: 7 MB total traffic, counted on
  // both send and receive sides? (send-side accounting only)
  EXPECT_EQ(world.total_io().bytes_transferred, 7'000'000u);
}

TEST(World, LatencyAddsToArrival) {
  CostModel m = flat_model();
  m.message_latency_seconds = 0.25;
  Cluster cluster(2, m);
  World world(cluster);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, {1.0});
    } else {
      comm.recv(0);
    }
  });
  EXPECT_GT(world.sim_seconds(), 0.25);
}

TEST(World, RankExceptionPropagates) {
  Cluster cluster(2, flat_model());
  World world(cluster);
  auto failing_run = [&] {
    world.run([&](Comm& comm) {
      if (comm.rank() == 1) throw NumericalError("rank 1 failed");
      // rank 0 does nothing and exits cleanly
    });
  };
  EXPECT_THROW(failing_run(), NumericalError);
}

TEST(World, RunIsRepeatable) {
  Cluster cluster(2, flat_model());
  World world(cluster);
  for (int round = 0; round < 3; ++round) {
    world.run([&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send(1, {static_cast<double>(round)});
      } else {
        EXPECT_EQ(comm.recv(0)[0], static_cast<double>(round));
      }
    });
  }
}

}  // namespace
}  // namespace mri::mpi
