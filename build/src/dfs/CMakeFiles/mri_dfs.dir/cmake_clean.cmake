file(REMOVE_RECURSE
  "CMakeFiles/mri_dfs.dir/datanode.cpp.o"
  "CMakeFiles/mri_dfs.dir/datanode.cpp.o.d"
  "CMakeFiles/mri_dfs.dir/dfs.cpp.o"
  "CMakeFiles/mri_dfs.dir/dfs.cpp.o.d"
  "CMakeFiles/mri_dfs.dir/namenode.cpp.o"
  "CMakeFiles/mri_dfs.dir/namenode.cpp.o.d"
  "CMakeFiles/mri_dfs.dir/path.cpp.o"
  "CMakeFiles/mri_dfs.dir/path.cpp.o.d"
  "libmri_dfs.a"
  "libmri_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
