# Empty dependencies file for mri_dfs.
# This may be replaced when dependencies are built.
