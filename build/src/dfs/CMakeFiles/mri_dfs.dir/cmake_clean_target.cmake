file(REMOVE_RECURSE
  "libmri_dfs.a"
)
