# Empty compiler generated dependencies file for mri_sim.
# This may be replaced when dependencies are built.
