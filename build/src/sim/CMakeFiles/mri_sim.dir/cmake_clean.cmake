file(REMOVE_RECURSE
  "CMakeFiles/mri_sim.dir/cluster.cpp.o"
  "CMakeFiles/mri_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/mri_sim.dir/cost_model.cpp.o"
  "CMakeFiles/mri_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/mri_sim.dir/failure.cpp.o"
  "CMakeFiles/mri_sim.dir/failure.cpp.o.d"
  "CMakeFiles/mri_sim.dir/metrics.cpp.o"
  "CMakeFiles/mri_sim.dir/metrics.cpp.o.d"
  "libmri_sim.a"
  "libmri_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
