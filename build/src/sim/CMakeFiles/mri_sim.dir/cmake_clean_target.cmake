file(REMOVE_RECURSE
  "libmri_sim.a"
)
