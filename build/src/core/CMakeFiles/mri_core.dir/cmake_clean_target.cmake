file(REMOVE_RECURSE
  "libmri_core.a"
)
