
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/mri_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/assemble.cpp" "src/core/CMakeFiles/mri_core.dir/assemble.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/assemble.cpp.o.d"
  "/root/repo/src/core/factor_io.cpp" "src/core/CMakeFiles/mri_core.dir/factor_io.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/factor_io.cpp.o.d"
  "/root/repo/src/core/import.cpp" "src/core/CMakeFiles/mri_core.dir/import.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/import.cpp.o.d"
  "/root/repo/src/core/inverse_job.cpp" "src/core/CMakeFiles/mri_core.dir/inverse_job.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/inverse_job.cpp.o.d"
  "/root/repo/src/core/inverter.cpp" "src/core/CMakeFiles/mri_core.dir/inverter.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/inverter.cpp.o.d"
  "/root/repo/src/core/lu_job.cpp" "src/core/CMakeFiles/mri_core.dir/lu_job.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/lu_job.cpp.o.d"
  "/root/repo/src/core/lu_pipeline.cpp" "src/core/CMakeFiles/mri_core.dir/lu_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/lu_pipeline.cpp.o.d"
  "/root/repo/src/core/multiply_job.cpp" "src/core/CMakeFiles/mri_core.dir/multiply_job.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/multiply_job.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/mri_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/partition_layout.cpp" "src/core/CMakeFiles/mri_core.dir/partition_layout.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/partition_layout.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/mri_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/tile_set.cpp" "src/core/CMakeFiles/mri_core.dir/tile_set.cpp.o" "gcc" "src/core/CMakeFiles/mri_core.dir/tile_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/mri_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mri_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/mri_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/scalapack/CMakeFiles/mri_scalapack.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mri_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mri_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
