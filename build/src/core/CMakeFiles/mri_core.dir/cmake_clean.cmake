file(REMOVE_RECURSE
  "CMakeFiles/mri_core.dir/adaptive.cpp.o"
  "CMakeFiles/mri_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/mri_core.dir/assemble.cpp.o"
  "CMakeFiles/mri_core.dir/assemble.cpp.o.d"
  "CMakeFiles/mri_core.dir/factor_io.cpp.o"
  "CMakeFiles/mri_core.dir/factor_io.cpp.o.d"
  "CMakeFiles/mri_core.dir/import.cpp.o"
  "CMakeFiles/mri_core.dir/import.cpp.o.d"
  "CMakeFiles/mri_core.dir/inverse_job.cpp.o"
  "CMakeFiles/mri_core.dir/inverse_job.cpp.o.d"
  "CMakeFiles/mri_core.dir/inverter.cpp.o"
  "CMakeFiles/mri_core.dir/inverter.cpp.o.d"
  "CMakeFiles/mri_core.dir/lu_job.cpp.o"
  "CMakeFiles/mri_core.dir/lu_job.cpp.o.d"
  "CMakeFiles/mri_core.dir/lu_pipeline.cpp.o"
  "CMakeFiles/mri_core.dir/lu_pipeline.cpp.o.d"
  "CMakeFiles/mri_core.dir/multiply_job.cpp.o"
  "CMakeFiles/mri_core.dir/multiply_job.cpp.o.d"
  "CMakeFiles/mri_core.dir/partition.cpp.o"
  "CMakeFiles/mri_core.dir/partition.cpp.o.d"
  "CMakeFiles/mri_core.dir/partition_layout.cpp.o"
  "CMakeFiles/mri_core.dir/partition_layout.cpp.o.d"
  "CMakeFiles/mri_core.dir/plan.cpp.o"
  "CMakeFiles/mri_core.dir/plan.cpp.o.d"
  "CMakeFiles/mri_core.dir/tile_set.cpp.o"
  "CMakeFiles/mri_core.dir/tile_set.cpp.o.d"
  "libmri_core.a"
  "libmri_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
