# Empty compiler generated dependencies file for mri_core.
# This may be replaced when dependencies are built.
