
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/pipeline.cpp" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/pipeline.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/pipeline.cpp.o.d"
  "/root/repo/src/mapreduce/runtime.cpp" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/runtime.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/runtime.cpp.o.d"
  "/root/repo/src/mapreduce/scheduler.cpp" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/scheduler.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/scheduler.cpp.o.d"
  "/root/repo/src/mapreduce/shuffle.cpp" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/shuffle.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mri_mapreduce.dir/shuffle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/CMakeFiles/mri_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
