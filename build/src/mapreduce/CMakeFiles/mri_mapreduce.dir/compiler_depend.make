# Empty compiler generated dependencies file for mri_mapreduce.
# This may be replaced when dependencies are built.
