file(REMOVE_RECURSE
  "libmri_mapreduce.a"
)
