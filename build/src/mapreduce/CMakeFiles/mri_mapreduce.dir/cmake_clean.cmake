file(REMOVE_RECURSE
  "CMakeFiles/mri_mapreduce.dir/pipeline.cpp.o"
  "CMakeFiles/mri_mapreduce.dir/pipeline.cpp.o.d"
  "CMakeFiles/mri_mapreduce.dir/runtime.cpp.o"
  "CMakeFiles/mri_mapreduce.dir/runtime.cpp.o.d"
  "CMakeFiles/mri_mapreduce.dir/scheduler.cpp.o"
  "CMakeFiles/mri_mapreduce.dir/scheduler.cpp.o.d"
  "CMakeFiles/mri_mapreduce.dir/shuffle.cpp.o"
  "CMakeFiles/mri_mapreduce.dir/shuffle.cpp.o.d"
  "libmri_mapreduce.a"
  "libmri_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
