file(REMOVE_RECURSE
  "libmri_common.a"
)
