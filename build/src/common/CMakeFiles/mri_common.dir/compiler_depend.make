# Empty compiler generated dependencies file for mri_common.
# This may be replaced when dependencies are built.
