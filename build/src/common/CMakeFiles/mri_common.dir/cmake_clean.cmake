file(REMOVE_RECURSE
  "CMakeFiles/mri_common.dir/cli.cpp.o"
  "CMakeFiles/mri_common.dir/cli.cpp.o.d"
  "CMakeFiles/mri_common.dir/logging.cpp.o"
  "CMakeFiles/mri_common.dir/logging.cpp.o.d"
  "CMakeFiles/mri_common.dir/table.cpp.o"
  "CMakeFiles/mri_common.dir/table.cpp.o.d"
  "CMakeFiles/mri_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mri_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mri_common.dir/units.cpp.o"
  "CMakeFiles/mri_common.dir/units.cpp.o.d"
  "libmri_common.a"
  "libmri_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
