
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/dfs_io.cpp" "src/matrix/CMakeFiles/mri_matrix.dir/dfs_io.cpp.o" "gcc" "src/matrix/CMakeFiles/mri_matrix.dir/dfs_io.cpp.o.d"
  "/root/repo/src/matrix/generate.cpp" "src/matrix/CMakeFiles/mri_matrix.dir/generate.cpp.o" "gcc" "src/matrix/CMakeFiles/mri_matrix.dir/generate.cpp.o.d"
  "/root/repo/src/matrix/layout.cpp" "src/matrix/CMakeFiles/mri_matrix.dir/layout.cpp.o" "gcc" "src/matrix/CMakeFiles/mri_matrix.dir/layout.cpp.o.d"
  "/root/repo/src/matrix/matrix.cpp" "src/matrix/CMakeFiles/mri_matrix.dir/matrix.cpp.o" "gcc" "src/matrix/CMakeFiles/mri_matrix.dir/matrix.cpp.o.d"
  "/root/repo/src/matrix/ops.cpp" "src/matrix/CMakeFiles/mri_matrix.dir/ops.cpp.o" "gcc" "src/matrix/CMakeFiles/mri_matrix.dir/ops.cpp.o.d"
  "/root/repo/src/matrix/permutation.cpp" "src/matrix/CMakeFiles/mri_matrix.dir/permutation.cpp.o" "gcc" "src/matrix/CMakeFiles/mri_matrix.dir/permutation.cpp.o.d"
  "/root/repo/src/matrix/text_format.cpp" "src/matrix/CMakeFiles/mri_matrix.dir/text_format.cpp.o" "gcc" "src/matrix/CMakeFiles/mri_matrix.dir/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mri_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mri_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
