# Empty compiler generated dependencies file for mri_matrix.
# This may be replaced when dependencies are built.
