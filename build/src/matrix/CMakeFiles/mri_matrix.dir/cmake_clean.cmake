file(REMOVE_RECURSE
  "CMakeFiles/mri_matrix.dir/dfs_io.cpp.o"
  "CMakeFiles/mri_matrix.dir/dfs_io.cpp.o.d"
  "CMakeFiles/mri_matrix.dir/generate.cpp.o"
  "CMakeFiles/mri_matrix.dir/generate.cpp.o.d"
  "CMakeFiles/mri_matrix.dir/layout.cpp.o"
  "CMakeFiles/mri_matrix.dir/layout.cpp.o.d"
  "CMakeFiles/mri_matrix.dir/matrix.cpp.o"
  "CMakeFiles/mri_matrix.dir/matrix.cpp.o.d"
  "CMakeFiles/mri_matrix.dir/ops.cpp.o"
  "CMakeFiles/mri_matrix.dir/ops.cpp.o.d"
  "CMakeFiles/mri_matrix.dir/permutation.cpp.o"
  "CMakeFiles/mri_matrix.dir/permutation.cpp.o.d"
  "CMakeFiles/mri_matrix.dir/text_format.cpp.o"
  "CMakeFiles/mri_matrix.dir/text_format.cpp.o.d"
  "libmri_matrix.a"
  "libmri_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
