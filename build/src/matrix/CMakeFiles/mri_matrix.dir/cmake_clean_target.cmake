file(REMOVE_RECURSE
  "libmri_matrix.a"
)
