# Empty compiler generated dependencies file for mri_linalg.
# This may be replaced when dependencies are built.
