file(REMOVE_RECURSE
  "CMakeFiles/mri_linalg.dir/gauss_jordan.cpp.o"
  "CMakeFiles/mri_linalg.dir/gauss_jordan.cpp.o.d"
  "CMakeFiles/mri_linalg.dir/lu.cpp.o"
  "CMakeFiles/mri_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/mri_linalg.dir/qr.cpp.o"
  "CMakeFiles/mri_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/mri_linalg.dir/solve.cpp.o"
  "CMakeFiles/mri_linalg.dir/solve.cpp.o.d"
  "CMakeFiles/mri_linalg.dir/triangular.cpp.o"
  "CMakeFiles/mri_linalg.dir/triangular.cpp.o.d"
  "libmri_linalg.a"
  "libmri_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
