
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/gauss_jordan.cpp" "src/linalg/CMakeFiles/mri_linalg.dir/gauss_jordan.cpp.o" "gcc" "src/linalg/CMakeFiles/mri_linalg.dir/gauss_jordan.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/linalg/CMakeFiles/mri_linalg.dir/lu.cpp.o" "gcc" "src/linalg/CMakeFiles/mri_linalg.dir/lu.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/mri_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/mri_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/solve.cpp" "src/linalg/CMakeFiles/mri_linalg.dir/solve.cpp.o" "gcc" "src/linalg/CMakeFiles/mri_linalg.dir/solve.cpp.o.d"
  "/root/repo/src/linalg/triangular.cpp" "src/linalg/CMakeFiles/mri_linalg.dir/triangular.cpp.o" "gcc" "src/linalg/CMakeFiles/mri_linalg.dir/triangular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/mri_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mri_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
