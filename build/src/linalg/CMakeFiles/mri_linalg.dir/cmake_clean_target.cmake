file(REMOVE_RECURSE
  "libmri_linalg.a"
)
