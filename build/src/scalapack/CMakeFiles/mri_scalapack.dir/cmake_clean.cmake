file(REMOVE_RECURSE
  "CMakeFiles/mri_scalapack.dir/invert.cpp.o"
  "CMakeFiles/mri_scalapack.dir/invert.cpp.o.d"
  "CMakeFiles/mri_scalapack.dir/pdgetrf.cpp.o"
  "CMakeFiles/mri_scalapack.dir/pdgetrf.cpp.o.d"
  "CMakeFiles/mri_scalapack.dir/pdgetri.cpp.o"
  "CMakeFiles/mri_scalapack.dir/pdgetri.cpp.o.d"
  "libmri_scalapack.a"
  "libmri_scalapack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_scalapack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
