file(REMOVE_RECURSE
  "libmri_scalapack.a"
)
