# Empty compiler generated dependencies file for mri_scalapack.
# This may be replaced when dependencies are built.
