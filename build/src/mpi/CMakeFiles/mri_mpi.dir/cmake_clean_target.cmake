file(REMOVE_RECURSE
  "libmri_mpi.a"
)
