# Empty compiler generated dependencies file for mri_mpi.
# This may be replaced when dependencies are built.
