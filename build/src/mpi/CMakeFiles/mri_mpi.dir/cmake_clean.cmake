file(REMOVE_RECURSE
  "CMakeFiles/mri_mpi.dir/world.cpp.o"
  "CMakeFiles/mri_mpi.dir/world.cpp.o.d"
  "libmri_mpi.a"
  "libmri_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
