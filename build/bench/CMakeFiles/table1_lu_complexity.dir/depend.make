# Empty dependencies file for table1_lu_complexity.
# This may be replaced when dependencies are built.
