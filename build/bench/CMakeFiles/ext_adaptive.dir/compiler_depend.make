# Empty compiler generated dependencies file for ext_adaptive.
# This may be replaced when dependencies are built.
