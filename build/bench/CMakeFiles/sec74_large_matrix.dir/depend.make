# Empty dependencies file for sec74_large_matrix.
# This may be replaced when dependencies are built.
