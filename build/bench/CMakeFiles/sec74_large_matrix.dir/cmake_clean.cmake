file(REMOVE_RECURSE
  "CMakeFiles/sec74_large_matrix.dir/sec74_large_matrix.cpp.o"
  "CMakeFiles/sec74_large_matrix.dir/sec74_large_matrix.cpp.o.d"
  "sec74_large_matrix"
  "sec74_large_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec74_large_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
