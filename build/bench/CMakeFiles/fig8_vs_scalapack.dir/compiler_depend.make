# Empty compiler generated dependencies file for fig8_vs_scalapack.
# This may be replaced when dependencies are built.
