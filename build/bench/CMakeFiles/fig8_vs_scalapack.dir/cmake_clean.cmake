file(REMOVE_RECURSE
  "CMakeFiles/fig8_vs_scalapack.dir/fig8_vs_scalapack.cpp.o"
  "CMakeFiles/fig8_vs_scalapack.dir/fig8_vs_scalapack.cpp.o.d"
  "fig8_vs_scalapack"
  "fig8_vs_scalapack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vs_scalapack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
