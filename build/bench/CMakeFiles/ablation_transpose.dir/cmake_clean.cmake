file(REMOVE_RECURSE
  "CMakeFiles/ablation_transpose.dir/ablation_transpose.cpp.o"
  "CMakeFiles/ablation_transpose.dir/ablation_transpose.cpp.o.d"
  "ablation_transpose"
  "ablation_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
