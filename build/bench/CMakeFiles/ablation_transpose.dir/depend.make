# Empty dependencies file for ablation_transpose.
# This may be replaced when dependencies are built.
