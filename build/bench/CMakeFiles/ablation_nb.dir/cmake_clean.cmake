file(REMOVE_RECURSE
  "CMakeFiles/ablation_nb.dir/ablation_nb.cpp.o"
  "CMakeFiles/ablation_nb.dir/ablation_nb.cpp.o.d"
  "ablation_nb"
  "ablation_nb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
