# Empty compiler generated dependencies file for ablation_nb.
# This may be replaced when dependencies are built.
