file(REMOVE_RECURSE
  "CMakeFiles/ablation_methods.dir/ablation_methods.cpp.o"
  "CMakeFiles/ablation_methods.dir/ablation_methods.cpp.o.d"
  "ablation_methods"
  "ablation_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
