# Empty dependencies file for ext_spark_mode.
# This may be replaced when dependencies are built.
