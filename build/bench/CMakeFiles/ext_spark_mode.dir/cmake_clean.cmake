file(REMOVE_RECURSE
  "CMakeFiles/ext_spark_mode.dir/ext_spark_mode.cpp.o"
  "CMakeFiles/ext_spark_mode.dir/ext_spark_mode.cpp.o.d"
  "ext_spark_mode"
  "ext_spark_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spark_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
