# Empty compiler generated dependencies file for table3_matrices_jobs.
# This may be replaced when dependencies are built.
