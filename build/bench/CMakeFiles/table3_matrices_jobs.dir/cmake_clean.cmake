file(REMOVE_RECURSE
  "CMakeFiles/table3_matrices_jobs.dir/table3_matrices_jobs.cpp.o"
  "CMakeFiles/table3_matrices_jobs.dir/table3_matrices_jobs.cpp.o.d"
  "table3_matrices_jobs"
  "table3_matrices_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_matrices_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
