# Empty dependencies file for table2_inversion_complexity.
# This may be replaced when dependencies are built.
