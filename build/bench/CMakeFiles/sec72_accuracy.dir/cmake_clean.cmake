file(REMOVE_RECURSE
  "CMakeFiles/sec72_accuracy.dir/sec72_accuracy.cpp.o"
  "CMakeFiles/sec72_accuracy.dir/sec72_accuracy.cpp.o.d"
  "sec72_accuracy"
  "sec72_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
