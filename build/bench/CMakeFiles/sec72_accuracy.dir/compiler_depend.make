# Empty compiler generated dependencies file for sec72_accuracy.
# This may be replaced when dependencies are built.
