file(REMOVE_RECURSE
  "CMakeFiles/linalg_inversion_methods_test.dir/linalg/inversion_methods_test.cpp.o"
  "CMakeFiles/linalg_inversion_methods_test.dir/linalg/inversion_methods_test.cpp.o.d"
  "linalg_inversion_methods_test"
  "linalg_inversion_methods_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_inversion_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
