# Empty compiler generated dependencies file for linalg_inversion_methods_test.
# This may be replaced when dependencies are built.
