
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/tile_set_test.cpp" "tests/CMakeFiles/core_tile_set_test.dir/core/tile_set_test.cpp.o" "gcc" "tests/CMakeFiles/core_tile_set_test.dir/core/tile_set_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scalapack/CMakeFiles/mri_scalapack.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/mri_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mri_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/mri_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mri_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mri_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
