# Empty compiler generated dependencies file for core_tile_set_test.
# This may be replaced when dependencies are built.
