file(REMOVE_RECURSE
  "CMakeFiles/core_tile_set_test.dir/core/tile_set_test.cpp.o"
  "CMakeFiles/core_tile_set_test.dir/core/tile_set_test.cpp.o.d"
  "core_tile_set_test"
  "core_tile_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tile_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
