file(REMOVE_RECURSE
  "CMakeFiles/core_end_to_end_test.dir/core/end_to_end_test.cpp.o"
  "CMakeFiles/core_end_to_end_test.dir/core/end_to_end_test.cpp.o.d"
  "core_end_to_end_test"
  "core_end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
