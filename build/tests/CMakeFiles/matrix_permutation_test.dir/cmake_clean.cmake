file(REMOVE_RECURSE
  "CMakeFiles/matrix_permutation_test.dir/matrix/permutation_test.cpp.o"
  "CMakeFiles/matrix_permutation_test.dir/matrix/permutation_test.cpp.o.d"
  "matrix_permutation_test"
  "matrix_permutation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_permutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
