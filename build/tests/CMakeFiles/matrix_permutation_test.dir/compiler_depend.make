# Empty compiler generated dependencies file for matrix_permutation_test.
# This may be replaced when dependencies are built.
