file(REMOVE_RECURSE
  "CMakeFiles/core_import_test.dir/core/import_test.cpp.o"
  "CMakeFiles/core_import_test.dir/core/import_test.cpp.o.d"
  "core_import_test"
  "core_import_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
