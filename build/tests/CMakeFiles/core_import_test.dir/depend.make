# Empty dependencies file for core_import_test.
# This may be replaced when dependencies are built.
