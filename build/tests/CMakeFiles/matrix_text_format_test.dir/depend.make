# Empty dependencies file for matrix_text_format_test.
# This may be replaced when dependencies are built.
