file(REMOVE_RECURSE
  "CMakeFiles/matrix_text_format_test.dir/matrix/text_format_test.cpp.o"
  "CMakeFiles/matrix_text_format_test.dir/matrix/text_format_test.cpp.o.d"
  "matrix_text_format_test"
  "matrix_text_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_text_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
