file(REMOVE_RECURSE
  "CMakeFiles/matrix_ops_test.dir/matrix/ops_test.cpp.o"
  "CMakeFiles/matrix_ops_test.dir/matrix/ops_test.cpp.o.d"
  "matrix_ops_test"
  "matrix_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
