# Empty compiler generated dependencies file for linalg_triangular_test.
# This may be replaced when dependencies are built.
