file(REMOVE_RECURSE
  "CMakeFiles/linalg_triangular_test.dir/linalg/triangular_test.cpp.o"
  "CMakeFiles/linalg_triangular_test.dir/linalg/triangular_test.cpp.o.d"
  "linalg_triangular_test"
  "linalg_triangular_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_triangular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
