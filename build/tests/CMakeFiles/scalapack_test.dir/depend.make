# Empty dependencies file for scalapack_test.
# This may be replaced when dependencies are built.
