file(REMOVE_RECURSE
  "CMakeFiles/scalapack_test.dir/scalapack/scalapack_test.cpp.o"
  "CMakeFiles/scalapack_test.dir/scalapack/scalapack_test.cpp.o.d"
  "scalapack_test"
  "scalapack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalapack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
