# Empty compiler generated dependencies file for dfs_namenode_test.
# This may be replaced when dependencies are built.
