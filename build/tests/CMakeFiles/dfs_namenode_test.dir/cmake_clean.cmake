file(REMOVE_RECURSE
  "CMakeFiles/dfs_namenode_test.dir/dfs/namenode_test.cpp.o"
  "CMakeFiles/dfs_namenode_test.dir/dfs/namenode_test.cpp.o.d"
  "dfs_namenode_test"
  "dfs_namenode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_namenode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
