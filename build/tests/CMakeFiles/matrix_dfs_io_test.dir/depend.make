# Empty dependencies file for matrix_dfs_io_test.
# This may be replaced when dependencies are built.
