# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for matrix_dfs_io_test.
