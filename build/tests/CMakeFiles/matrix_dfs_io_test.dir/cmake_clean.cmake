file(REMOVE_RECURSE
  "CMakeFiles/matrix_dfs_io_test.dir/matrix/dfs_io_test.cpp.o"
  "CMakeFiles/matrix_dfs_io_test.dir/matrix/dfs_io_test.cpp.o.d"
  "matrix_dfs_io_test"
  "matrix_dfs_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_dfs_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
