# Empty compiler generated dependencies file for core_spark_mode_test.
# This may be replaced when dependencies are built.
