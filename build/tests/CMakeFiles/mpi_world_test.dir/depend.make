# Empty dependencies file for mpi_world_test.
# This may be replaced when dependencies are built.
