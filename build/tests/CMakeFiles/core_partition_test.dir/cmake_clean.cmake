file(REMOVE_RECURSE
  "CMakeFiles/core_partition_test.dir/core/partition_test.cpp.o"
  "CMakeFiles/core_partition_test.dir/core/partition_test.cpp.o.d"
  "core_partition_test"
  "core_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
