file(REMOVE_RECURSE
  "CMakeFiles/core_multiply_solve_det_test.dir/core/multiply_solve_det_test.cpp.o"
  "CMakeFiles/core_multiply_solve_det_test.dir/core/multiply_solve_det_test.cpp.o.d"
  "core_multiply_solve_det_test"
  "core_multiply_solve_det_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multiply_solve_det_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
