# Empty compiler generated dependencies file for core_multiply_solve_det_test.
# This may be replaced when dependencies are built.
