# Empty compiler generated dependencies file for matrix_generate_test.
# This may be replaced when dependencies are built.
