file(REMOVE_RECURSE
  "CMakeFiles/matrix_generate_test.dir/matrix/generate_test.cpp.o"
  "CMakeFiles/matrix_generate_test.dir/matrix/generate_test.cpp.o.d"
  "matrix_generate_test"
  "matrix_generate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_generate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
