# Empty compiler generated dependencies file for matrix_layout_test.
# This may be replaced when dependencies are built.
