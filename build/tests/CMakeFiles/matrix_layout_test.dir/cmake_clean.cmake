file(REMOVE_RECURSE
  "CMakeFiles/matrix_layout_test.dir/matrix/layout_test.cpp.o"
  "CMakeFiles/matrix_layout_test.dir/matrix/layout_test.cpp.o.d"
  "matrix_layout_test"
  "matrix_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
