file(REMOVE_RECURSE
  "CMakeFiles/integration_systems_test.dir/integration/systems_agreement_test.cpp.o"
  "CMakeFiles/integration_systems_test.dir/integration/systems_agreement_test.cpp.o.d"
  "integration_systems_test"
  "integration_systems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_systems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
