# Empty dependencies file for integration_systems_test.
# This may be replaced when dependencies are built.
