file(REMOVE_RECURSE
  "CMakeFiles/dfs_path_test.dir/dfs/path_test.cpp.o"
  "CMakeFiles/dfs_path_test.dir/dfs/path_test.cpp.o.d"
  "dfs_path_test"
  "dfs_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
