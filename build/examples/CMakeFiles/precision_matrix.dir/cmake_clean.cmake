file(REMOVE_RECURSE
  "CMakeFiles/precision_matrix.dir/precision_matrix.cpp.o"
  "CMakeFiles/precision_matrix.dir/precision_matrix.cpp.o.d"
  "precision_matrix"
  "precision_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
