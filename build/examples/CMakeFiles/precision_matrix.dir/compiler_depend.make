# Empty compiler generated dependencies file for precision_matrix.
# This may be replaced when dependencies are built.
