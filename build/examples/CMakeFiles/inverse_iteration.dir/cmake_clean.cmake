file(REMOVE_RECURSE
  "CMakeFiles/inverse_iteration.dir/inverse_iteration.cpp.o"
  "CMakeFiles/inverse_iteration.dir/inverse_iteration.cpp.o.d"
  "inverse_iteration"
  "inverse_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
