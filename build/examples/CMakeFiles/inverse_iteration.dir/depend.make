# Empty dependencies file for inverse_iteration.
# This may be replaced when dependencies are built.
