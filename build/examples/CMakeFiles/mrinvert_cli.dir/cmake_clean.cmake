file(REMOVE_RECURSE
  "CMakeFiles/mrinvert_cli.dir/mrinvert_cli.cpp.o"
  "CMakeFiles/mrinvert_cli.dir/mrinvert_cli.cpp.o.d"
  "mrinvert_cli"
  "mrinvert_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrinvert_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
