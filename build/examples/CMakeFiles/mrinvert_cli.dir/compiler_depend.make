# Empty compiler generated dependencies file for mrinvert_cli.
# This may be replaced when dependencies are built.
