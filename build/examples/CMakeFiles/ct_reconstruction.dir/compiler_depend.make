# Empty compiler generated dependencies file for ct_reconstruction.
# This may be replaced when dependencies are built.
