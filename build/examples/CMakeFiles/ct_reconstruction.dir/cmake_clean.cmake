file(REMOVE_RECURSE
  "CMakeFiles/ct_reconstruction.dir/ct_reconstruction.cpp.o"
  "CMakeFiles/ct_reconstruction.dir/ct_reconstruction.cpp.o.d"
  "ct_reconstruction"
  "ct_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
